"""Generation-throughput benchmark: stacked population evaluation vs the loop.

The PR-3 tentpole batches a whole NSGA-II generation through shared
``(G, ...)`` tensor ops (stacked QAT, batched accuracy, vectorized NSGA-II)
instead of looping genome by genome. This benchmark runs the same figure2
search per population size — per-genome loop, then stacked — on the
whitewine pipeline, asserts the Pareto fronts are byte-identical, and
records the evaluations/s of both paths (plus the speedup) to
``BENCH_evaluation.json`` and the ``BENCH_history.json`` trajectory.

Default mode measures the full figure2 workload at populations 16 and 24
(the speedup grows with the population as per-batch numpy dispatch is
amortized over more genomes); the acceptance headline is the best speedup
at population >= 16. Run with ``REPRO_BENCH_SMOKE=1`` on CI for the reduced
population-16 configuration.
"""

from __future__ import annotations

import time

import pytest

from benchlib import BACKEND, SMOKE, bench_config, record_bench
from repro.core import MinimizationPipeline, PipelineConfig
from repro.search import EvaluationSettings, GAConfig, HardwareAwareGA

_GENERATIONS = 2
_POPULATIONS = (16,) if SMOKE else (16, 24)
_REPEATS = 1 if SMOKE else 2
_FINETUNE_EPOCHS = 3 if SMOKE else 6


@pytest.fixture(scope="module")
def prepared():
    if SMOKE:
        return MinimizationPipeline(bench_config("whitewine")).prepare()
    # The full figure2 workload the acceptance numbers are quoted on.
    return MinimizationPipeline(
        PipelineConfig(dataset="whitewine", finetune_epochs=8)
    ).prepare()


def _run_search(prepared, stacked: bool, population: int):
    settings = EvaluationSettings(finetune_epochs=_FINETUNE_EPOCHS, backend=BACKEND)
    config = GAConfig(
        population_size=population,
        n_generations=_GENERATIONS,
        seed=0,
        n_workers=1,
        stacked=stacked,
    )
    start = time.perf_counter()
    result = HardwareAwareGA(prepared, config=config, settings=settings).run()
    return result, time.perf_counter() - start


def _front_signature(result):
    return [
        (point.accuracy, point.area, point.power, point.delay)
        for point in result.front
    ]


def test_generation_throughput_stacked_vs_loop(prepared):
    # Warm the hardware-cost memos and numpy so neither path pays cold-start.
    _run_search(prepared, stacked=True, population=min(_POPULATIONS))

    payload = {"generations": _GENERATIONS, "backend": BACKEND, "by_population": {}}
    speedups = []
    for population in _POPULATIONS:
        loop_s = stacked_s = float("inf")
        loop_result = stacked_result = None
        for _ in range(_REPEATS):
            loop_result, seconds = _run_search(prepared, stacked=False, population=population)
            loop_s = min(loop_s, seconds)
            stacked_result, seconds = _run_search(prepared, stacked=True, population=population)
            stacked_s = min(stacked_s, seconds)

        # The stacked path must be numerically invisible: same fronts, same
        # evaluation counts, same all-points trajectory. Byte equality is the
        # numpy backend's contract; accelerated backends (REPRO_BENCH_BACKEND)
        # only promise allclose floats, so there only the counts are checked.
        assert stacked_result.n_evaluations == loop_result.n_evaluations
        if BACKEND == "numpy":
            assert _front_signature(stacked_result) == _front_signature(loop_result)
            assert [(p.accuracy, p.area) for p in stacked_result.all_points] == [
                (p.accuracy, p.area) for p in loop_result.all_points
            ]

        evaluations = loop_result.n_evaluations
        speedup = (evaluations / stacked_s) / (evaluations / loop_s)
        speedups.append(speedup)
        payload["by_population"][str(population)] = {
            "evaluations": evaluations,
            "loop_s": loop_s,
            "stacked_s": stacked_s,
            "loop_evaluations_per_s": evaluations / loop_s,
            "stacked_evaluations_per_s": evaluations / stacked_s,
            "speedup": speedup,
        }
        print(
            f"\npopulation {population}: loop {evaluations / loop_s:.1f}/s, "
            f"stacked {evaluations / stacked_s:.1f}/s ({speedup:.2f}x)"
        )

    payload["speedup"] = max(speedups)
    record_bench("generation", payload)
    # Identical results faster: the stacked path must never lose to the loop
    # (generous CI margin; the absolute floor lives in the CI workflow).
    assert max(speedups) > (1.05 if SMOKE else 2.0), (
        f"stacked path too slow: best {max(speedups):.2f}x over the per-genome loop"
    )
