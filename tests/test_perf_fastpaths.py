"""Bit-identity property tests for the PR-2 fast paths.

The perf overhaul (memoized hardware-cost kernels, cost-only synthesis, the
fused QAT training step and the fused Adam) must be *invisible* numerically:
every fast path has a reference implementation — either the pre-refactor
algorithm reimplemented here verbatim, or the shipped slow path — and these
tests assert exact float equality between the two.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import operand_width_lists, rng_seeds, weight_tensors

from repro.bespoke import BespokeConfig, synthesize, synthesize_cost_only
from repro.clustering import cluster_model_weights
from repro.hardware.arithmetic import (
    adder_tree,
    adder_tree_from_widths,
    argmax_unit,
    clear_cost_caches,
    constant_multiplier,
)
from repro.hardware.cost import HardwareCost
from repro.hardware.csd import (
    binary_adder_stages,
    coefficient_bit_length,
    csd_adder_stages,
    csd_stage_table,
    is_power_of_two,
)
from repro.hardware.technology import silicon_library
from repro.nn.network import build_mlp
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer, TrainerConfig
from repro.pruning import prune_by_magnitude
from repro.quantization import SymmetricQuantizer, attach_quantizers
from repro.search import (
    EvaluationSettings,
    GAConfig,
    HardwareAwareGA,
)

# --- reference (pre-refactor) hardware-cost algorithms ---------------------------


def _ref_ripple(width, tech):
    fa = tech.cell("FA")
    return HardwareCost(
        area=fa.area * width,
        power=fa.power * width,
        delay=fa.delay * width,
        gate_counts={"FA": width},
    )


def _ref_constant_multiplier(coefficient, input_bits, tech, method="csd"):
    """The seed implementation: a serial fold of ripple-carry adder stages."""
    coefficient = int(coefficient)
    if coefficient == 0:
        return HardwareCost.zero()
    if is_power_of_two(coefficient) and coefficient > 0:
        return HardwareCost.zero()
    stages = (
        csd_adder_stages(coefficient)
        if method == "csd"
        else binary_adder_stages(coefficient)
    )
    product_width = input_bits + coefficient_bit_length(coefficient)
    if coefficient < 0 and stages == 0:
        return tech.cost("INV", product_width)
    cost = HardwareCost.zero()
    for _ in range(stages):
        cost = cost.serial(_ref_ripple(product_width, tech))
    return cost


def _ref_adder_tree_from_widths(operand_widths, tech):
    """The seed sorted-list pop(0)/insert Huffman loop."""
    widths = sorted(int(w) for w in operand_widths)
    if len(widths) <= 1:
        return HardwareCost.zero()
    total_area = 0.0
    total_power = 0.0
    total_fa = 0
    depth_delay = 0.0
    while len(widths) > 1:
        first = widths.pop(0)
        second = widths.pop(0)
        adder_width = max(first, second)
        adder = _ref_ripple(adder_width, tech)
        total_area += adder.area
        total_power += adder.power
        total_fa += adder_width
        depth_delay += adder.delay
        result_width = adder_width + 1
        insert_at = 0
        while insert_at < len(widths) and widths[insert_at] < result_width:
            insert_at += 1
        widths.insert(insert_at, result_width)
    n_operands = len(operand_widths)
    tree_depth = math.ceil(math.log2(n_operands)) if n_operands > 1 else 0
    serial_stages = n_operands - 1
    delay = depth_delay * (tree_depth / serial_stages) if serial_stages else 0.0
    return HardwareCost(
        area=total_area, power=total_power, delay=delay, gate_counts={"FA": total_fa}
    )


def _ref_adder_tree(n_operands, operand_width, tech):
    """The seed level-by-level uniform-width fold."""
    if n_operands <= 1:
        return HardwareCost.zero()
    cost = HardwareCost.zero()
    level_width = operand_width
    remaining = n_operands
    depth = 0
    while remaining > 1:
        adders = remaining // 2
        level_cost = _ref_ripple(level_width, tech).scaled(adders)
        if depth == 0:
            cost = level_cost
        else:
            cost = HardwareCost(
                area=cost.area + level_cost.area,
                power=cost.power + level_cost.power,
                delay=cost.delay + level_cost.delay,
                gate_counts={
                    **cost.gate_counts,
                    "FA": cost.gate_counts.get("FA", 0)
                    + level_cost.gate_counts.get("FA", 0),
                },
            )
        remaining = adders + (remaining % 2)
        level_width += 1
        depth += 1
    return cost


def _ref_argmax_unit(n_values, width, index_bits, tech):
    """The seed serial fold of compare-and-select stages."""
    if n_values == 1:
        return HardwareCost.zero()
    stage = (
        _ref_ripple(width, tech)
        .serial(tech.cost("INV", width))
        .serial(tech.cost("MUX2", width + index_bits))
    )
    cost = HardwareCost.zero()
    for _ in range(n_values - 1):
        cost = cost.serial(stage)
    return cost


class TestMemoizedHardwareCosts:
    """(i) memoized kernels == reference over the full coefficient/bit domain."""

    @pytest.mark.parametrize("method", ["csd", "binary"])
    @pytest.mark.parametrize("input_bits", [4, 8])
    def test_constant_multiplier_full_domain(self, egt, method, input_bits):
        clear_cost_caches()
        max_level = (1 << 7) - 1  # full 8-bit weight domain
        for coefficient in range(-max_level, max_level + 1):
            fast = constant_multiplier(coefficient, input_bits, egt, method=method)
            ref = _ref_constant_multiplier(coefficient, input_bits, egt, method=method)
            assert fast == ref, (coefficient, input_bits, method)
            # Second call is served from the memo and must stay equal.
            assert constant_multiplier(coefficient, input_bits, egt, method=method) == ref

    def test_distinct_technologies_not_conflated(self, egt):
        silicon = silicon_library()
        a = constant_multiplier(7, 4, egt)
        b = constant_multiplier(7, 4, silicon)
        assert a != b
        assert a == _ref_constant_multiplier(7, 4, egt)
        assert b == _ref_constant_multiplier(7, 4, silicon)

    @given(widths=operand_width_lists)
    @settings(max_examples=200, deadline=None)
    def test_adder_tree_from_widths_matches_reference(self, egt, widths):
        """Property: the Huffman-heap kernel equals the seed sorted-list loop
        on every operand-width multiset (hypothesis explores the domain and
        shrinks failures to minimal multisets)."""
        assert adder_tree_from_widths(widths, egt) == _ref_adder_tree_from_widths(
            widths, egt
        ), widths

    def test_adder_tree_uniform_matches_reference(self, egt):
        for n_operands in range(2, 33):
            for width in (1, 4, 9):
                assert adder_tree(n_operands, width, egt) == _ref_adder_tree(
                    n_operands, width, egt
                ), (n_operands, width)

    def test_argmax_unit_matches_reference(self, egt):
        for n_values in range(1, 16):
            assert argmax_unit(n_values, 9, 3, egt) == _ref_argmax_unit(
                n_values, 9, 3, egt
            ), n_values

    def test_csd_stage_table_matches_scalar(self):
        for method in ("csd", "binary"):
            table = csd_stage_table(8, method)
            scalar = csd_adder_stages if method == "csd" else binary_adder_stages
            assert table.shape == (256,)
            assert all(int(table[m]) == scalar(m) for m in range(256))

    def test_csd_stage_table_validation(self):
        with pytest.raises(ValueError):
            csd_stage_table(0)
        with pytest.raises(ValueError):
            csd_stage_table(4, "ternary")


class TestCostOnlySynthesis:
    """(ii) cost-only synthesis == report_from_circuit on minimized models."""

    @staticmethod
    def _assert_reports_equal(full, fast):
        assert fast.total == full.total
        assert fast.by_kind == full.by_kind
        assert fast.by_layer == full.by_layer
        assert fast.component_counts == full.component_counts
        assert fast.n_multipliers == full.n_multipliers
        assert fast.n_shared_products == full.n_shared_products
        assert fast.metadata == full.metadata
        assert fast.technology == full.technology

    @pytest.mark.parametrize("seed", range(6))
    def test_random_minimized_models(self, seed):
        rng = np.random.default_rng(seed)
        model = build_mlp(9, [int(rng.integers(6, 18))], 5, seed=seed)
        if seed % 2:
            prune_by_magnitude(model, [0.5, 0.3], global_ranking=False)
        if seed % 3 == 0:
            cluster_model_weights(model, [4, 3], seed=seed)
        if seed % 3 == 1:
            attach_quantizers(model, [3, 6])
        config = BespokeConfig(
            input_bits=int(rng.integers(3, 7)),
            weight_bits=[int(rng.integers(2, 9)), int(rng.integers(2, 9))],
            share_products=bool(seed % 2),
            multiplier_method="binary" if seed == 2 else "csd",
            include_io_registers=seed != 3,
        )
        full = synthesize(model, config=config, name="m")
        fast = synthesize_cost_only(model, config=config, name="m")
        self._assert_reports_equal(full, fast)

    def test_trained_seeds_model(self, seeds_model):
        model = seeds_model.clone()
        prune_by_magnitude(model, [0.4, 0.2], global_ranking=False)
        attach_quantizers(model, 4)
        full = synthesize(model, name="seeds")
        fast = synthesize_cost_only(model, name="seeds")
        self._assert_reports_equal(full, fast)

    def test_requires_dense_layers(self):
        from repro.nn.network import MLP

        with pytest.raises(ValueError):
            synthesize_cost_only(MLP())


class TestQuantizerFastPath:
    """Fused fake-quantization == to_floats(to_integers(...))."""

    @pytest.mark.parametrize("bits", [2, 4, 8])
    @given(values=weight_tensors())
    @settings(max_examples=40, deadline=None)
    def test_matches_fixed_point_round_trip(self, bits, values):
        """Property: the single-pass quantizer equals the two-step fixed-point
        round trip on arbitrary weight tensors (all-zero and single-element
        tensors included)."""
        quantizer = SymmetricQuantizer(bits=bits)
        for scale in (None, 0.125):
            quantizer.scale = scale
            fmt = quantizer.format_for(values)
            expected = fmt.to_floats(fmt.to_integers(values))
            got = quantizer(values)
            assert got.tobytes() == expected.tobytes()

    def test_zero_and_empty_tensors(self):
        quantizer = SymmetricQuantizer(bits=4)
        assert quantizer(np.zeros((3, 3))).tobytes() == np.zeros((3, 3)).tobytes()
        assert quantizer(np.zeros((0,))).size == 0


class TestFusedAdam:
    """Fused flat-buffer Adam == the per-parameter legacy loop."""

    @staticmethod
    def _random_params(rng, shapes):
        return [rng.normal(size=shape) for shape in shapes]

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    @given(seed=rng_seeds)
    @settings(max_examples=15, deadline=None)
    def test_trajectories_identical(self, weight_decay, seed):
        """Property: fused and legacy Adam walk bitwise-identical trajectories
        for any gradient stream (hypothesis drives the stream seed)."""
        rng = np.random.default_rng(seed)
        shapes = [(7, 5), (5,), (5, 3), (3,)]
        params_fused = self._random_params(rng, shapes)
        params_legacy = [p.copy() for p in params_fused]
        fused = Adam(learning_rate=0.01, weight_decay=weight_decay)
        legacy = Adam(learning_rate=0.01, weight_decay=weight_decay, fused=False)
        for _ in range(10):
            grads = self._random_params(rng, shapes)
            fused.update(params_fused, grads)
            legacy.update(params_legacy, [g.copy() for g in grads])
            for a, b in zip(params_fused, params_legacy):
                assert a.tobytes() == b.tobytes()

    def test_fresh_parameters_never_inherit_stale_moments(self, rng):
        """A brand-new parameter list must start at step 1 even if object ids
        of freed arrays get recycled (the flat state holds its arrays alive
        and matches by identity, not id)."""
        optimizer = Adam(learning_rate=0.01)
        params = [rng.normal(size=(5, 5))]
        for _ in range(3):
            optimizer.update(params, [rng.normal(size=(5, 5))])
        assert optimizer._flat["t"] == 3
        del params
        fresh = [np.zeros((5, 5))]
        reference = [np.zeros((5, 5))]
        legacy = Adam(learning_rate=0.01, fused=False)
        grad = rng.normal(size=(5, 5))
        optimizer.update(fresh, [grad])
        legacy.update(reference, [grad.copy()])
        assert fresh[0].tobytes() == reference[0].tobytes()

    def test_parameter_list_change_defuses_cleanly(self, rng):
        shapes = [(4, 3), (3,)]
        params_fused = self._random_params(rng, shapes)
        params_legacy = [p.copy() for p in params_fused]
        fused = Adam(learning_rate=0.05)
        legacy = Adam(learning_rate=0.05, fused=False)
        for _ in range(5):
            grads = self._random_params(rng, shapes)
            fused.update(params_fused, grads)
            legacy.update(params_legacy, [g.copy() for g in grads])
        # Continue with only the first parameter: moments must carry over.
        for _ in range(5):
            grad = rng.normal(size=shapes[0])
            fused.update(params_fused[:1], [grad])
            legacy.update(params_legacy[:1], [grad.copy()])
        for a, b in zip(params_fused, params_legacy):
            assert a.tobytes() == b.tobytes()

    def test_validation_still_raises(self, rng):
        optimizer = Adam()
        with pytest.raises(ValueError):
            optimizer.update([np.zeros(3)], [np.zeros(3), np.zeros(2)])
        with pytest.raises(ValueError):
            optimizer.update([np.zeros(3)], [np.zeros(2)])


class TestTrainerFastPath:
    """(iii) fused QAT training step == the layerwise reference trajectory."""

    @staticmethod
    def _problem(rng, n_features=9, n_classes=5, n=220):
        x = rng.normal(size=(n, n_features))
        y = rng.integers(0, n_classes, size=n)
        return x, y

    def _fit(self, model, fast, x, y, xv, yv, epochs=8):
        trainer = Trainer(
            model,
            optimizer=Adam(learning_rate=0.003, fused=fast),
            config=TrainerConfig(epochs=epochs, batch_size=32, early_stopping_patience=4),
            seed=11,
            fast_path=fast,
        )
        return trainer.fit(x, y, xv, yv)

    def test_masked_quantized_model_identical(self, rng):
        x, y = self._problem(rng)
        xv, yv = self._problem(rng, n=60)

        def make():
            model = build_mlp(9, [16], 5, seed=3)
            prune_by_magnitude(model, [0.4, 0.2], global_ranking=False)
            attach_quantizers(model, [4, 5])
            return model

        fast_model, ref_model = make(), make()
        fast_history = self._fit(fast_model, True, x, y, xv, yv)
        ref_history = self._fit(ref_model, False, x, y, xv, yv)
        assert fast_history.as_dict() == ref_history.as_dict()
        for fast_layer, ref_layer in zip(fast_model.dense_layers, ref_model.dense_layers):
            assert fast_layer.weights.tobytes() == ref_layer.weights.tobytes()
            assert fast_layer.bias.tobytes() == ref_layer.bias.tobytes()

    def test_plain_float_model_identical(self, rng):
        x, y = self._problem(rng)
        fast_model = build_mlp(9, [12], 5, seed=1)
        ref_model = build_mlp(9, [12], 5, seed=1)
        fast_history = self._fit(fast_model, True, x, y, None, None, epochs=5)
        ref_history = self._fit(ref_model, False, x, y, None, None, epochs=5)
        assert fast_history.as_dict() == ref_history.as_dict()
        for fast_layer, ref_layer in zip(fast_model.dense_layers, ref_model.dense_layers):
            assert fast_layer.weights.tobytes() == ref_layer.weights.tobytes()

    def test_leading_activation_layer_identical(self, rng):
        """A model whose first layer is an activation must still propagate the
        gradient to it (the dead-gradient skip applies only to the model's
        literal first layer)."""
        from repro.nn.layers import ActivationLayer, Dense
        from repro.nn.network import MLP

        x, y = self._problem(rng, n_features=6, n_classes=3)

        def make():
            model = MLP()
            model.add(ActivationLayer("relu"))
            layer_rng = np.random.default_rng(5)
            model.add(Dense(6, 8, rng=layer_rng))
            model.add(ActivationLayer("relu"))
            model.add(Dense(8, 3, rng=layer_rng))
            return model

        fast_model, ref_model = make(), make()
        fast_history = self._fit(fast_model, True, x, y, None, None, epochs=3)
        ref_history = self._fit(ref_model, False, x, y, None, None, epochs=3)
        assert fast_history.as_dict() == ref_history.as_dict()
        for fast_layer, ref_layer in zip(fast_model.dense_layers, ref_model.dense_layers):
            assert fast_layer.weights.tobytes() == ref_layer.weights.tobytes()

    def test_dropout_model_falls_back_to_reference_loop(self):
        model = build_mlp(6, [8], 3, dropout=0.2, seed=0)
        trainer = Trainer(model, seed=0)
        assert not trainer._supports_fused_epoch()

    def test_effective_cache_disabled_after_fit(self, rng):
        x, y = self._problem(rng)
        model = build_mlp(9, [8], 5, seed=0)
        attach_quantizers(model, 4)
        self._fit(model, True, x, y, None, None, epochs=2)
        layer = model.dense_layers[0]
        assert not layer._effective_cache_enabled
        # Mutating weights outside training must be reflected immediately.
        before = layer.effective_weights().copy()
        layer.weights = layer.weights + 1.0
        assert not np.array_equal(layer.effective_weights(), before)


class TestSerialParallelStillIdentical:
    """(iv) serial and parallel searches stay bit-identical after the overhaul."""

    def test_ga_fronts_identical(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=2)

        def run(n_workers):
            config = GAConfig(
                population_size=4,
                n_generations=2,
                seed=0,
                n_workers=n_workers,
            )
            return HardwareAwareGA(prepared, config=config, settings=settings).run()

        serial = run(1)
        parallel = run(2)
        serial_front = [(p.accuracy, p.area, p.power, p.delay) for p in serial.front]
        parallel_front = [(p.accuracy, p.area, p.power, p.delay) for p in parallel.front]
        assert serial_front == parallel_front
        assert serial.n_evaluations == parallel.n_evaluations
