"""Unit and integration tests for repro.nn.trainer."""

import numpy as np
import pytest

from repro.nn.network import build_mlp
from repro.nn.trainer import Trainer, TrainerConfig, TrainingHistory, finetune, train_classifier


@pytest.fixture
def problem(tiny_problem):
    return tiny_problem


class TestTrainerConfig:
    def test_defaults_valid(self):
        TrainerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"monitor": "train_loss"},
            {"lr_decay_factor": 0.0},
            {"lr_decay_factor": 1.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainerConfig(**kwargs)


class TestTrainingBehaviour:
    def test_learns_separable_problem(self, problem):
        features, labels = problem
        model = build_mlp(4, (6,), 2, seed=0)
        history = train_classifier(
            model, features, labels, epochs=40, batch_size=16, seed=0
        )
        assert model.evaluate_accuracy(features, labels) > 0.9
        assert isinstance(history, TrainingHistory)
        assert history.epochs_run >= 1

    def test_history_records_validation(self, problem):
        features, labels = problem
        model = build_mlp(4, (6,), 2, seed=0)
        history = train_classifier(
            model,
            features[:80],
            labels[:80],
            features[80:],
            labels[80:],
            epochs=10,
            seed=0,
        )
        assert len(history.val_accuracy) == history.epochs_run
        assert len(history.val_loss) == history.epochs_run
        assert 0.0 <= history.best_val_accuracy <= 1.0

    def test_no_validation_history_empty(self, problem):
        features, labels = problem
        model = build_mlp(4, (4,), 2, seed=0)
        history = train_classifier(model, features, labels, epochs=5, seed=0)
        assert history.val_accuracy == []

    def test_early_stopping_limits_epochs(self, problem):
        features, labels = problem
        model = build_mlp(4, (6,), 2, seed=0)
        config = TrainerConfig(epochs=500, early_stopping_patience=3)
        trainer = Trainer(model, config=config, seed=0)
        history = trainer.fit(features, labels)
        assert history.epochs_run < 500

    def test_restore_best_weights(self, problem):
        features, labels = problem
        model = build_mlp(4, (6,), 2, seed=0)
        config = TrainerConfig(epochs=30, restore_best_weights=True, early_stopping_patience=None)
        trainer = Trainer(model, config=config, seed=0)
        trainer.fit(features[:80], labels[:80], features[80:], labels[80:])
        # After restoring, validation accuracy equals the best recorded value.
        final_val = model.evaluate_accuracy(features[80:], labels[80:])
        assert final_val >= 0.8

    def test_mismatched_rows_rejected(self, problem):
        features, labels = problem
        trainer = Trainer(build_mlp(4, (3,), 2, seed=0), seed=0)
        with pytest.raises(ValueError):
            trainer.fit(features, labels[:-5])

    def test_deterministic_given_seed(self, problem):
        features, labels = problem

        def run():
            model = build_mlp(4, (5,), 2, seed=1)
            train_classifier(model, features, labels, epochs=8, seed=7)
            return model.dense_layers[0].weights.copy()

        np.testing.assert_array_equal(run(), run())

    def test_string_optimizer_and_loss_accepted(self, problem):
        features, labels = problem
        model = build_mlp(4, (4,), 2, seed=0)
        trainer = Trainer(model, optimizer="sgd", loss="softmax_crossentropy", seed=0)
        history = trainer.fit(features, labels)
        assert history.epochs_run >= 1


class TestFinetune:
    def test_finetune_improves_perturbed_model(self, problem):
        features, labels = problem
        model = build_mlp(4, (6,), 2, seed=0)
        train_classifier(model, features, labels, epochs=40, seed=0)
        baseline = model.evaluate_accuracy(features, labels)

        # Damage the weights, then fine-tune back.
        for layer in model.dense_layers:
            layer.weights += np.random.default_rng(0).normal(scale=0.8, size=layer.weights.shape)
        damaged = model.evaluate_accuracy(features, labels)
        finetune(model, features, labels, epochs=25, learning_rate=0.01, seed=0)
        recovered = model.evaluate_accuracy(features, labels)
        assert recovered >= damaged
        assert recovered >= baseline - 0.1

    def test_finetune_respects_mask(self, problem):
        features, labels = problem
        model = build_mlp(4, (6,), 2, seed=0)
        layer = model.dense_layers[0]
        mask = np.ones_like(layer.weights)
        mask[0, :] = 0.0
        layer.mask = mask
        finetune(model, features, labels, epochs=5, seed=0)
        assert np.all(layer.effective_weights()[0, :] == 0.0)

    def test_history_as_dict_keys(self, problem):
        features, labels = problem
        model = build_mlp(4, (3,), 2, seed=0)
        history = finetune(model, features, labels, epochs=3, seed=0)
        data = history.as_dict()
        assert set(data) == {"train_loss", "train_accuracy", "val_loss", "val_accuracy"}
