"""Capture the golden GA fronts pinned by tests/test_search_surrogate_ga.py.

Run from the repo root (on a commit whose GA behavior is the reference)::

    PYTHONPATH=src python tests/data/capture_surrogate_golden.py

Writes ``surrogate_off_front_golden.json``: the exact front documents a
surrogate-free :class:`~repro.search.ga.HardwareAwareGA` produces on two
small deterministic workloads (2-objective and robustness-aware
3-objective). The A/B test re-runs the same configurations with the
surrogate knobs left off and byte-compares the serialized fronts, proving
the surrogate-assisted search path changes nothing while disabled.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import MinimizationPipeline, PipelineConfig
from repro.search import GAConfig, HardwareAwareGA

GOLDEN_PATH = Path(__file__).resolve().parent / "surrogate_off_front_golden.json"


def pipeline_config() -> PipelineConfig:
    """The small deterministic workload shared with the golden test."""
    return PipelineConfig(
        dataset="seeds", train_epochs=5, n_samples=150, finetune_epochs=2
    )


def ga_config(robust: bool) -> GAConfig:
    """GA settings of the golden runs (small budgets, fixed seed)."""
    knobs = dict(population_size=6, n_generations=2, finetune_epochs=2, seed=0)
    if robust:
        knobs.update(fault_rate=0.05, n_fault_trials=4)
    return GAConfig(**knobs)


def front_document(robust: bool) -> dict:
    """Run the GA and serialize its front the way campaign front.json does."""
    prepared = MinimizationPipeline(pipeline_config()).prepare()
    result = HardwareAwareGA(prepared, config=ga_config(robust)).run()
    return {
        "baseline": prepared.baseline_point.as_dict(),
        "front": [point.as_dict() for point in result.front],
        "n_evaluations": result.n_evaluations,
    }


def main() -> None:
    """Capture both golden fronts and write the pinned JSON document."""
    document = {
        "two_objective": front_document(robust=False),
        "three_objective": front_document(robust=True),
    }
    GOLDEN_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
