"""Campaign runner: execution, resume bit-identity, sharding, reporting.

The golden guarantee pinned down here is the ISSUE-4 acceptance criterion:
a campaign over two datasets killed mid-run (between jobs *or* in the
middle of a job's evaluations) and resumed produces fronts byte-identical
to the uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PersistentEvaluationCache,
    build_report,
    campaign_status,
    execute_job,
    format_report,
    write_report,
)
from repro.search import EvaluationSettings, SerialEvaluator

#: Small enough to keep every runner test under a second per campaign.
_PIPELINE = {"train_epochs": 3, "n_samples": 120, "finetune_epochs": 1}


def _spec(searches=None, datasets=("seeds", "redwine"), seeds=(0,)):
    return CampaignSpec.from_dict(
        {
            "name": "runner-test",
            "datasets": list(datasets),
            "seeds": list(seeds),
            "pipeline": dict(_PIPELINE),
            "searches": searches
            or [{"algorithm": "random", "n_evaluations": 3}],
        }
    )


def _front_bytes(directory, job_id):
    return (directory / "jobs" / job_id / "front.json").read_bytes()


class TestRunnerBasics:
    def test_runs_all_jobs_and_journals(self, tmp_path):
        spec = _spec()
        summary = CampaignRunner(spec, tmp_path / "camp").run()
        assert summary.ok
        assert summary.completed == 2
        status = campaign_status(tmp_path / "camp")
        assert status["completed"] == 2 and status["pending"] == 0
        front = json.loads(_front_bytes(tmp_path / "camp", "seeds-random-s0"))
        assert front["dataset"] == "seeds"
        assert front["front"], "front must not be empty"
        assert front["baseline"]["technique"] == "baseline"

    def test_rerun_is_a_noop(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, tmp_path / "camp").run()
        summary = CampaignRunner(spec, tmp_path / "camp").run()
        assert summary.outcomes == [] and summary.remaining == 0
        assert summary.completed_before == 2

    def test_spec_mismatch_is_rejected(self, tmp_path):
        CampaignRunner(_spec(), tmp_path / "camp").run()
        edited = _spec(seeds=(0, 1))
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            CampaignRunner(edited, tmp_path / "camp").run()

    def test_max_jobs_bounds_one_drain(self, tmp_path):
        spec = _spec()
        summary = CampaignRunner(spec, tmp_path / "camp").run(max_jobs=1)
        assert summary.completed == 1 and summary.remaining == 1
        summary = CampaignRunner(spec, tmp_path / "camp").run()
        assert summary.completed == 1 and summary.remaining == 0

    def test_shards_partition_the_campaign(self, tmp_path):
        from repro.campaign import CampaignJournal

        spec = _spec()
        CampaignRunner(spec, tmp_path / "camp", shard="0/2").run()
        status = campaign_status(tmp_path / "camp")
        assert status["completed"] == 1 and status["pending"] == 1
        # A finished shard must NOT declare the whole campaign complete.
        events = [e["event"] for e in CampaignJournal(tmp_path / "camp").events()]
        assert "campaign_completed" not in events
        CampaignRunner(spec, tmp_path / "camp", shard="1/2").run()
        status = campaign_status(tmp_path / "camp")
        assert status["completed"] == 2 and status["pending"] == 0
        events = [e["event"] for e in CampaignJournal(tmp_path / "camp").events()]
        assert "campaign_completed" in events

    def test_cache_bound_reaches_the_persistent_cache(self, tmp_path):
        bounds_seen = {}

        def recording_factory(cache_dir, context_key, max_entries):
            cache = PersistentEvaluationCache(
                cache_dir, context_key, max_entries=max_entries
            )
            bounds_seen[context_key] = max_entries
            return cache

        spec = _spec(
            datasets=("seeds",),
            searches=[
                {"algorithm": "ga", "population_size": 6, "n_generations": 1,
                 "finetune_epochs": 1, "cache_size": 5},
            ],
        )
        summary = CampaignRunner(
            spec, tmp_path / "camp", cache_factory=recording_factory
        ).run()
        assert summary.ok
        assert list(bounds_seen.values()) == [5]

    def test_failed_job_does_not_sink_the_campaign(self, tmp_path):
        # An invalid GA configuration (population < 4) fails at job start.
        spec = _spec(
            searches=[
                {"algorithm": "ga", "population_size": 2, "n_generations": 1},
                {"algorithm": "random", "n_evaluations": 2},
            ]
        )
        summary = CampaignRunner(spec, tmp_path / "camp").run()
        assert summary.failed == 2  # one bad GA job per dataset
        assert summary.completed == 2  # random jobs unaffected
        status = campaign_status(tmp_path / "camp")
        assert status["failed"] == 2


class TestResumeBitIdentity:
    """Killed campaigns resume byte-identically (the golden criterion)."""

    GA_SEARCH = [
        {"algorithm": "ga", "population_size": 6, "n_generations": 2,
         "finetune_epochs": 1}
    ]

    def test_between_job_interruption(self, tmp_path):
        spec = _spec(searches=self.GA_SEARCH)
        CampaignRunner(spec, tmp_path / "a").run()
        # Interrupt after the first job, then resume.
        CampaignRunner(spec, tmp_path / "b").run(max_jobs=1)
        CampaignRunner(spec, tmp_path / "b").run()
        for job in spec.expand():
            assert _front_bytes(tmp_path / "a", job.job_id) == _front_bytes(
                tmp_path / "b", job.job_id
            )

    def test_mid_job_crash_resumes_bit_identically(self, tmp_path):
        spec = _spec(searches=self.GA_SEARCH)
        CampaignRunner(spec, tmp_path / "a").run()

        def crashing_factory(cache_dir, context_key, max_entries):
            return PersistentEvaluationCache(
                cache_dir, context_key, max_entries=max_entries, fail_after_puts=4
            )

        crashed = CampaignRunner(
            spec, tmp_path / "b", cache_factory=crashing_factory
        ).run()
        assert crashed.failed == 2  # both jobs died mid-evaluation
        resumed = CampaignRunner(spec, tmp_path / "b").run()
        assert resumed.ok and resumed.completed == 2
        for job in spec.expand():
            assert _front_bytes(tmp_path / "a", job.job_id) == _front_bytes(
                tmp_path / "b", job.job_id
            )

    def test_resume_fast_forwards_through_the_cache(self, tmp_path):
        spec = _spec(searches=self.GA_SEARCH, datasets=("seeds",))
        uninterrupted = CampaignRunner(spec, tmp_path / "a").run()
        full_evaluations = uninterrupted.outcomes[0].n_evaluations

        def crashing_factory(cache_dir, context_key, max_entries):
            return PersistentEvaluationCache(
                cache_dir, context_key, max_entries=max_entries, fail_after_puts=4
            )

        CampaignRunner(spec, tmp_path / "b", cache_factory=crashing_factory).run()
        resumed = CampaignRunner(spec, tmp_path / "b").run()
        # The 4 genomes journaled before the crash are served from disk.
        assert resumed.outcomes[0].n_evaluations == full_evaluations - 4

    def test_no_cache_mode_still_resumes_identically(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, tmp_path / "a").run()
        CampaignRunner(spec, tmp_path / "b", use_cache=False).run(max_jobs=1)
        CampaignRunner(spec, tmp_path / "b", use_cache=False).run()
        for job in spec.expand():
            assert _front_bytes(tmp_path / "a", job.job_id) == _front_bytes(
                tmp_path / "b", job.job_id
            )


class TestCrossJobCacheSharing:
    def test_same_context_jobs_share_evaluations(self, tmp_path):
        # random and grid with the same pipeline/settings/seed share a shard;
        # overlapping genomes are evaluated once per campaign.
        spec = _spec(
            datasets=("seeds",),
            searches=[
                {"algorithm": "grid", "name": "grid-a", "bit_choices": [3, 4],
                 "sparsity_choices": [0.0], "cluster_choices": [0]},
                {"algorithm": "grid", "name": "grid-b", "bit_choices": [4, 5],
                 "sparsity_choices": [0.0], "cluster_choices": [0]},
            ],
        )
        summary = CampaignRunner(spec, tmp_path / "camp").run()
        assert summary.ok
        by_id = {outcome.job_id: outcome for outcome in summary.outcomes}
        # grid-b overlaps grid-a on the 4-bit genome: only one fresh evaluation.
        assert by_id["seeds-grid-a-s0"].n_evaluations == 2
        assert by_id["seeds-grid-b-s0"].n_evaluations == 1


class TestParallelJobs:
    def test_pool_matches_serial_byte_for_byte(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, tmp_path / "serial").run()
        summary = CampaignRunner(spec, tmp_path / "pool", max_workers=2).run()
        assert summary.ok
        for job in spec.expand():
            assert _front_bytes(tmp_path / "serial", job.job_id) == _front_bytes(
                tmp_path / "pool", job.job_id
            )


class TestEngineCacheInjection:
    def test_injected_cache_serves_hits_across_engines(self, tmp_path, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=1)
        from repro.search import GenomeSpace
        import numpy as np

        genome = GenomeSpace(n_layers=2).random_genome(np.random.default_rng(0))
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            first = SerialEvaluator(prepared, settings, seed=0, cache=cache)
            point = first.evaluate(genome)
            assert first.cache.misses == 1
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            second = SerialEvaluator(prepared, settings, seed=0, cache=cache)
            replayed = second.evaluate(genome)
            assert second.n_evaluations == 0  # disk hit, no fresh evaluation
        assert replayed.accuracy == point.accuracy
        assert replayed.area == point.area

    def test_cache_and_cache_size_are_mutually_exclusive(self, prepared_pipeline, tmp_path):
        prepared = prepared_pipeline.prepare()
        with pytest.raises(ValueError, match="not both"):
            SerialEvaluator(
                prepared,
                cache=PersistentEvaluationCache(tmp_path, "ctx"),
                cache_size=4,
            )


class TestReporting:
    def test_report_combines_per_dataset_fronts(self, tmp_path):
        spec = _spec(
            searches=[
                {"algorithm": "random", "name": "rand-a", "n_evaluations": 3},
                {"algorithm": "random", "name": "rand-b", "n_evaluations": 5},
            ],
        )
        CampaignRunner(spec, tmp_path / "camp").run()
        report = build_report(tmp_path / "camp")
        assert report["n_jobs_completed"] == 4
        assert set(report["datasets"]) == {"seeds", "redwine"}
        for entry in report["datasets"].values():
            assert len(entry["jobs"]) == 2
            assert entry["combined_front_size"] >= 1
            # Shared pipeline config and seed => shared baseline => combined
            # gains are valid.
            assert entry["baseline"] is not None
        text = format_report(report)
        assert "seeds" in text and "redwine" in text

    def test_report_with_mixed_seeds_keeps_per_job_gains(self, tmp_path):
        # Jobs with different seeds train different baselines: the combined
        # front is still built, but no shared baseline is claimed.
        spec = _spec(seeds=(0, 1))
        CampaignRunner(spec, tmp_path / "camp").run()
        report = build_report(tmp_path / "camp")
        for entry in report["datasets"].values():
            assert entry["baseline"] is None
            assert entry["combined_best_gain"] is None
            assert entry["combined_front_size"] >= 1

    def test_write_report_emits_artifacts(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, tmp_path / "camp").run()
        paths = write_report(tmp_path / "camp")
        assert {"summary.json", "summary.md"} <= set(paths)
        assert "front_seeds.json" in paths and "front_redwine.csv" in paths
        summary = json.loads(paths["summary.json"].read_text())
        assert summary["n_jobs_completed"] == 2
        markdown = paths["summary.md"].read_text()
        assert "| dataset |" in markdown

    def test_report_on_partial_campaign(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, tmp_path / "camp").run(max_jobs=1)
        report = build_report(tmp_path / "camp")
        assert report["n_jobs_completed"] == 1
        assert set(report["datasets"]) == {"seeds"}


class TestExecuteJob:
    def test_execute_job_is_self_contained(self, tmp_path):
        job = _spec().expand()[0]
        outcome = execute_job(job, tmp_path / "camp")
        assert outcome.status == "completed"
        assert (tmp_path / "camp" / "jobs" / job.job_id / "front.json").exists()
        assert (tmp_path / "camp" / "jobs" / job.job_id / "result.json").exists()
        result = json.loads(
            (tmp_path / "camp" / "jobs" / job.job_id / "result.json").read_text()
        )
        assert result["status"] == "completed"
        assert result["cache"]["enabled"] is True
        assert result["cache"]["persisted"] == outcome.n_evaluations


class TestTransientRetry:
    """ISSUE-7 satellite: transient failures retry with backoff, deterministic
    failures fail fast, and the attempt count lands in the manifest."""

    def _events(self, directory):
        from repro.campaign import CampaignJournal

        return CampaignJournal(directory).events()

    def test_transient_failure_is_retried_to_success(self, tmp_path):
        from repro.campaign import RetryPolicy

        attempts = []

        def flaky_factory(cache_dir, context_key, max_entries):
            if not attempts:
                attempts.append(1)
                raise OSError("transient filesystem hiccup")
            return PersistentEvaluationCache(
                cache_dir, context_key, max_entries=max_entries
            )

        spec = _spec(datasets=("seeds",))
        summary = CampaignRunner(
            spec,
            tmp_path / "camp",
            cache_factory=flaky_factory,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        ).run()
        assert summary.ok and summary.completed == 1
        assert summary.outcomes[0].attempts == 2
        events = self._events(tmp_path / "camp")
        retrying = [e for e in events if e["event"] == "job_retrying"]
        assert len(retrying) == 1
        assert retrying[0]["attempt"] == 1 and "OSError" in retrying[0]["error"]
        completed = [e for e in events if e["event"] == "job_completed"]
        assert completed[0]["attempts"] == 2

    def test_deterministic_failure_fails_fast(self, tmp_path):
        from repro.campaign import RetryPolicy

        def poisoned_factory(cache_dir, context_key, max_entries):
            raise ValueError("deterministic misconfiguration")

        spec = _spec(datasets=("seeds",))
        summary = CampaignRunner(
            spec,
            tmp_path / "camp",
            cache_factory=poisoned_factory,
            retry=RetryPolicy(max_attempts=5, base_delay=0.0),
        ).run()
        assert summary.failed == 1
        assert summary.outcomes[0].attempts == 1  # no retry budget burned
        events = self._events(tmp_path / "camp")
        assert not [e for e in events if e["event"] == "job_retrying"]
        failed = [e for e in events if e["event"] == "job_failed"]
        assert failed[0]["attempts"] == 1

    def test_transient_failure_exhausts_the_budget(self, tmp_path):
        from repro.campaign import RetryPolicy

        def always_flaky(cache_dir, context_key, max_entries):
            raise TimeoutError("never recovers")

        spec = _spec(datasets=("seeds",))
        summary = CampaignRunner(
            spec,
            tmp_path / "camp",
            cache_factory=always_flaky,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        ).run()
        assert summary.failed == 1
        assert summary.outcomes[0].attempts == 2
        events = self._events(tmp_path / "camp")
        assert len([e for e in events if e["event"] == "job_retrying"]) == 1

    def test_backoff_is_deterministic_and_bounded(self):
        from repro.campaign import RetryPolicy

        policy = RetryPolicy(max_attempts=5, base_delay=0.5, max_delay=4.0, jitter=0.25)
        delays = [policy.delay("job-x", attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [policy.delay("job-x", a) for a in (1, 2, 3, 4)]  # replayable
        assert all(d <= 4.0 for d in delays)
        assert delays[0] >= 0.5 and delays[1] >= 1.0  # exponential floor
        assert policy.delay("job-x", 1) != policy.delay("job-y", 1)  # decorrelated
        # round-trips through plain data for process pools
        assert RetryPolicy.from_dict(policy.as_dict()) == policy
