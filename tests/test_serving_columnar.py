"""Columnar npz fronts: round-trip, fallback safety, and npz/json parity.

The load-bearing property: a store serving an mmap-backed
``front_<dataset>.npz`` answers every query with the byte-identical JSON
body a plain-JSON store produces. Everything else protects the fallback —
a torn, truncated, stale or foreign npz must never poison serving, only
degrade it to the canonical JSON path.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from repro.campaign.columnar import (
    COLUMNAR_VERSION,
    FRONT_COLUMNS,
    front_npz_path,
    load_front_npz,
    write_front_npz,
)
from repro.campaign.journal import REPORT_DIR, write_json_atomic
from repro.core.pareto import pareto_front, pareto_front_indices, pareto_front_reference
from repro.core.results import DesignPoint
from repro.serving import FrontStore, QueryEngine
from strategies import front_documents, front_query_payloads

DOC = {
    "dataset": "seeds",
    "baseline": {
        "technique": "baseline",
        "accuracy": 0.95,
        "area": 4.0,
        "power": 2.0,
        "delay": 1.0,
        "parameters": {},
    },
    "front": [
        {
            "technique": "combined",
            "accuracy": 0.9,
            "area": 1.0,
            "power": 1.0,
            "delay": 0.5,
            "parameters": {"weight_bits": 4},
        },
        {
            "technique": "pruning",
            "accuracy": 0.8,
            "area": 0.5,
            "power": 0.8,
            "delay": 0.5,
            "parameters": {},
        },
        {
            "technique": "quantization",
            "accuracy": 0.7,
            "area": 2.0,
            "power": 1.5,
            "delay": 0.75,
            "parameters": {"weight_bits": 2},
        },
    ],
    "combined_best_gain": 4.0,
}


def write_campaign(root, document, with_npz=True, name="camp"):
    """One campaign directory holding the document's front (and npz)."""
    campaign = Path(root) / name
    (campaign / REPORT_DIR).mkdir(parents=True)
    json_path = campaign / REPORT_DIR / f"front_{document['dataset']}.json"
    write_json_atomic(json_path, document)
    if with_npz:
        write_front_npz(json_path, fingerprint="test-fingerprint")
    return campaign, json_path


@pytest.fixture
def campaign(tmp_path):
    return write_campaign(tmp_path, DOC)


# -- write/load round trip -----------------------------------------------------------


def test_npz_round_trips_every_column_and_row(campaign):
    campaign_dir, json_path = campaign
    columnar = load_front_npz(front_npz_path(json_path))
    assert columnar is not None
    assert columnar.version == COLUMNAR_VERSION
    assert columnar.dataset == "seeds"
    assert columnar.fingerprint == "test-fingerprint"
    assert columnar.n_rows == len(DOC["front"])
    points = [DesignPoint(**entry) for entry in DOC["front"]]
    for name in FRONT_COLUMNS:
        expected = [
            np.nan if getattr(p, name) is None else getattr(p, name) for p in points
        ]
        np.testing.assert_array_equal(columnar.columns[name], expected)
    for row, point in enumerate(points):
        assert columnar.point(row) == point
    assert list(columnar.pareto_index) == pareto_front_indices(points)


def test_npz_arrays_are_read_only_zero_copy_views(campaign):
    _, json_path = campaign
    columnar = load_front_npz(front_npz_path(json_path))
    for array in (*columnar.columns.values(), columnar.pareto_index):
        assert not array.flags.writeable
        assert array.base is not None  # a view over the shared mapping
        with pytest.raises(ValueError):
            array[...] = 0


def test_npz_sha_ties_to_the_exact_json_bytes(campaign):
    _, json_path = campaign
    import hashlib

    sha = hashlib.sha256(json_path.read_bytes()).hexdigest()
    assert load_front_npz(front_npz_path(json_path), expected_sha256=sha) is not None
    assert load_front_npz(front_npz_path(json_path), expected_sha256="0" * 64) is None


def test_write_front_npz_refuses_a_non_front_document(tmp_path):
    path = tmp_path / "front_x.json"
    path.write_text(json.dumps({"not": "a front"}))
    with pytest.raises(ValueError):
        write_front_npz(path)


def test_npz_round_trips_an_empty_front(tmp_path):
    document = dict(DOC, front=[])
    _, json_path = write_campaign(tmp_path, document)
    columnar = load_front_npz(front_npz_path(json_path))
    assert columnar is not None
    assert columnar.n_rows == 0
    assert columnar.pareto_index.size == 0


# -- fallback safety -----------------------------------------------------------------


def test_damaged_npz_loads_as_none_never_raises(tmp_path):
    _, json_path = write_campaign(tmp_path, DOC)
    npz_path = front_npz_path(json_path)
    raw = npz_path.read_bytes()
    damage = {
        "truncated": raw[: len(raw) // 2],
        "garbage": b"\x00" * 128,
        "empty": b"",
        "not-a-zip": b"PK\x03\x04" + b"junk" * 8,
    }
    for label, payload in damage.items():
        npz_path.write_bytes(payload)
        assert load_front_npz(npz_path) is None, label


def test_missing_npz_loads_as_none(tmp_path):
    assert load_front_npz(tmp_path / "nope.npz") is None


def test_foreign_version_npz_loads_as_none(tmp_path):
    _, json_path = write_campaign(tmp_path, DOC)
    npz_path = front_npz_path(json_path)
    members = dict(np.load(npz_path, allow_pickle=False))
    members["version"] = np.int64(COLUMNAR_VERSION + 1)
    np.savez(npz_path, **members)
    assert load_front_npz(npz_path) is None


def test_store_falls_back_to_json_when_npz_is_torn(tmp_path):
    campaign_dir, json_path = write_campaign(tmp_path, DOC)
    front_npz_path(json_path).write_bytes(b"\x00" * 64)
    store = FrontStore(campaign_dir)
    view = store.view(campaign_dir, "seeds")
    assert view.source == "json"
    assert store.raw_front("seeds") == json_path.read_bytes()
    assert store.stats()["npz_loads"] == 0
    assert store.stats()["json_loads"] == 1


def test_store_falls_back_to_json_when_npz_is_stale(tmp_path):
    """A JSON rewrite without an npz rewrite must serve the new JSON."""
    campaign_dir, json_path = write_campaign(tmp_path, DOC)
    newer = dict(DOC, front=DOC["front"][:1])
    write_json_atomic(json_path, newer)  # npz now carries the old sha
    store = FrontStore(campaign_dir)
    view = store.view(campaign_dir, "seeds")
    assert view.source == "json"
    assert json.loads(store.raw_front("seeds"))["front"] == newer["front"]
    # Re-deriving the npz restores the fast path on the next cold load
    # (npz presence is not an invalidation token — the JSON file is).
    write_front_npz(json_path)
    assert FrontStore(campaign_dir).view(campaign_dir, "seeds").source == "npz"


def test_store_prefers_npz_and_counts_the_load(tmp_path):
    campaign_dir, json_path = write_campaign(tmp_path, DOC)
    store = FrontStore(campaign_dir)
    view = store.view(campaign_dir, "seeds")
    assert view.source == "npz"
    assert store.stats()["npz_loads"] == 1
    assert store.stats()["json_loads"] == 0
    # Served bytes stay the canonical JSON artifact, byte for byte.
    assert store.raw_front("seeds") == json_path.read_bytes()


# -- npz/json parity (golden A/B) ----------------------------------------------------


def query_documents(engine, payloads):
    """Each payload's full JSON response body (sorted keys) via ``engine``."""
    return [
        json.dumps(engine.run(payload).as_dict(), sort_keys=True)
        for payload in payloads
    ]


GOLDEN_PAYLOADS = (
    {"dataset": "seeds"},
    {"dataset": "seeds", "include_dominated": True},
    {"dataset": "seeds", "min_accuracy": 0.75, "order_by": "power"},
    {"dataset": "seeds", "max_area": 1.5, "descending": True, "order_by": "accuracy"},
    {"dataset": "seeds", "top_k": 2, "include_dominated": True},
    {"dataset": "seeds", "nearest": {"accuracy": 0.85, "area": 0.75}},
    {"dataset": "seeds", "include_dominated": True, "offset": 1, "limit": 1},
)


def test_npz_and_json_stores_answer_golden_queries_identically(tmp_path):
    npz_campaign, _ = write_campaign(tmp_path, DOC, name="with-npz")
    json_campaign, _ = write_campaign(tmp_path, DOC, with_npz=False, name="json-only")
    npz_engine = QueryEngine(FrontStore(npz_campaign))
    json_engine = QueryEngine(FrontStore(json_campaign))
    assert query_documents(npz_engine, GOLDEN_PAYLOADS) == query_documents(
        json_engine, GOLDEN_PAYLOADS
    )
    # Both actually took the path under test.
    assert npz_engine.store.stats()["npz_loads"] >= 1
    assert json_engine.store.stats()["json_loads"] >= 1


@settings(max_examples=40, deadline=None)
@given(document=front_documents(), payload=front_query_payloads())
def test_query_over_npz_view_equals_query_over_json_view(document, payload):
    with tempfile.TemporaryDirectory() as root:
        npz_campaign, _ = write_campaign(root, document, name="with-npz")
        json_campaign, _ = write_campaign(
            root, document, with_npz=False, name="json-only"
        )
        npz_store = FrontStore(npz_campaign)
        json_store = FrontStore(json_campaign)
        npz_result = QueryEngine(npz_store).run(payload)
        json_result = QueryEngine(json_store).run(payload)
        assert json.dumps(npz_result.as_dict(), sort_keys=True) == json.dumps(
            json_result.as_dict(), sort_keys=True
        )
        assert npz_store.view(npz_campaign, document["dataset"]).source == "npz"
        assert json_store.view(json_campaign, document["dataset"]).source == "json"


@settings(max_examples=40, deadline=None)
@given(document=front_documents(min_points=1))
def test_vectorized_pareto_indices_match_the_reference_loop(document):
    points = [DesignPoint(**entry) for entry in document["front"]]
    robust = all(p.robust_accuracy is not None for p in points)
    indexed = [points[i] for i in pareto_front_indices(points, robust=robust)]
    assert indexed == pareto_front_reference(points, robust=robust)
    assert pareto_front(points, robust=robust) == indexed
