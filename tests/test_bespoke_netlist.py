"""Unit tests for repro.bespoke.netlist."""

import pytest

from repro.bespoke.netlist import CircuitComponent, Netlist
from repro.hardware.cost import HardwareCost


def component(name, kind="multiplier", area=1.0, layer=0):
    return CircuitComponent(
        name=name,
        kind=kind,
        cost=HardwareCost(area=area, power=area / 10, delay=5.0, gate_counts={"FA": 1}),
        layer_index=layer,
    )


class TestCircuitComponent:
    def test_valid_kinds_accepted(self):
        for kind in CircuitComponent.VALID_KINDS:
            CircuitComponent(name=f"c_{kind}", kind=kind, cost=HardwareCost.zero())

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            CircuitComponent(name="bad", kind="alu", cost=HardwareCost.zero())


class TestNetlist:
    def test_add_and_len(self):
        netlist = Netlist()
        netlist.add(component("a"))
        netlist.add(component("b"))
        assert len(netlist) == 2

    def test_duplicate_names_rejected(self):
        netlist = Netlist([component("a")])
        with pytest.raises(ValueError):
            netlist.add(component("a"))

    def test_duplicate_names_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Netlist([component("a"), component("a")])

    def test_extend(self):
        netlist = Netlist()
        netlist.extend([component("a"), component("b"), component("c")])
        assert len(netlist) == 3

    def test_by_kind_filters(self):
        netlist = Netlist(
            [component("m0"), component("t0", kind="adder_tree"), component("m1")]
        )
        assert len(netlist.by_kind("multiplier")) == 2
        assert len(netlist.by_kind("adder_tree")) == 1
        assert netlist.by_kind("argmax") == []

    def test_by_layer_filters(self):
        netlist = Netlist(
            [component("a", layer=0), component("b", layer=1), component("c", layer=1)]
        )
        assert len(netlist.by_layer(1)) == 2
        assert len(netlist.by_layer(5)) == 0

    def test_total_cost_sums_area(self):
        netlist = Netlist([component("a", area=1.0), component("b", area=2.5)])
        assert netlist.total_cost().area == pytest.approx(3.5)
        assert netlist.total_cost().gate_counts == {"FA": 2}

    def test_cost_by_kind(self):
        netlist = Netlist(
            [
                component("m0", area=1.0),
                component("m1", area=2.0),
                component("t0", kind="adder_tree", area=4.0),
            ]
        )
        breakdown = netlist.cost_by_kind()
        assert breakdown["multiplier"].area == pytest.approx(3.0)
        assert breakdown["adder_tree"].area == pytest.approx(4.0)

    def test_cost_by_layer_none_key_for_global(self):
        global_component = CircuitComponent(
            name="argmax", kind="argmax", cost=HardwareCost(area=1.0), layer_index=None
        )
        netlist = Netlist([component("a", layer=0), global_component])
        breakdown = netlist.cost_by_layer()
        assert None in breakdown
        assert breakdown[None].area == 1.0

    def test_count_by_kind(self):
        netlist = Netlist(
            [component("m0"), component("m1"), component("r", kind="register")]
        )
        assert netlist.count_by_kind() == {"multiplier": 2, "register": 1}

    def test_components_returns_copy(self):
        netlist = Netlist([component("a")])
        items = netlist.components
        items.append(component("b"))
        assert len(netlist) == 1

    def test_empty_netlist_totals(self):
        netlist = Netlist()
        assert netlist.total_cost().is_zero()
        assert netlist.cost_by_kind() == {}
