"""Reusable Hypothesis strategies for the property-based test layer.

The equality-style tests of this suite (fast path == reference, vectorized
== loop, robust == serial) all quantify over the same domains: genomes,
quantized weight tensors, objective vectors and fault-injection
configurations. Centralizing the strategies here keeps the domains honest —
every property test draws from the full space the production code accepts,
edge values (empty masks, rate 0.0/1.0, duplicate objectives) included.

Import as a plain module (``from strategies import genomes``): ``tests/`` is
on ``sys.path`` during collection and the name collides with nothing in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.hardware.fixed_point import max_symmetric_level
from repro.reliability import FAULT_MODELS, FaultInjectionConfig
from repro.search.genome import (
    DEFAULT_BIT_CHOICES,
    DEFAULT_CLUSTER_CHOICES,
    DEFAULT_SPARSITY_CHOICES,
    Genome,
)

#: Seeds for ``np.random.default_rng`` inside properties that need a
#: generator: hypothesis shrinks over the seed, numpy supplies the stream.
rng_seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def genomes(draw, min_layers: int = 1, max_layers: int = 4):
    """A :class:`repro.search.Genome` over the default gene alphabets."""
    n_layers = draw(st.integers(min_layers, max_layers))
    return Genome(
        weight_bits=tuple(
            draw(st.sampled_from(DEFAULT_BIT_CHOICES)) for _ in range(n_layers)
        ),
        sparsity=tuple(
            draw(st.sampled_from(DEFAULT_SPARSITY_CHOICES)) for _ in range(n_layers)
        ),
        clusters=tuple(
            draw(st.sampled_from(DEFAULT_CLUSTER_CHOICES)) for _ in range(n_layers)
        ),
    )


@st.composite
def weight_tensors(
    draw,
    max_rows: int = 12,
    max_cols: int = 12,
    max_magnitude: float = 8.0,
):
    """A float64 weight matrix, including all-zero and single-element shapes."""
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    values = draw(
        st.lists(
            st.floats(
                min_value=-max_magnitude,
                max_value=max_magnitude,
                allow_nan=False,
                allow_infinity=False,
                width=64,
            ),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.asarray(values, dtype=np.float64).reshape(rows, cols)


@st.composite
def quantized_weight_tensors(draw, min_bits: int = 2, max_bits: int = 8):
    """``(integer weight matrix, bits)`` on the symmetric level grid."""
    bits = draw(st.integers(min_bits, max_bits))
    level = max_symmetric_level(bits)
    rows = draw(st.integers(1, 10))
    cols = draw(st.integers(1, 10))
    values = draw(
        st.lists(
            st.integers(-level, level), min_size=rows * cols, max_size=rows * cols
        )
    )
    return np.asarray(values, dtype=np.int64).reshape(rows, cols), bits


@st.composite
def fault_configs(draw, max_trials: int = 6):
    """A full-domain :class:`FaultInjectionConfig` (degenerate rates included)."""
    return FaultInjectionConfig(
        fault_rate=draw(
            st.one_of(st.just(0.0), st.just(1.0), st.floats(0.0, 1.0, width=32))
        ),
        fault_model=draw(st.sampled_from(FAULT_MODELS)),
        weight_bits=draw(st.integers(2, 8)),
        level_shift_levels=draw(st.integers(1, 3)),
        n_trials=draw(st.integers(1, max_trials)),
        seed=draw(st.integers(0, 2**16)),
        include_bias=draw(st.booleans()),
    )


def objective_vectors(
    min_size: int = 1,
    max_size: int = 40,
    n_objectives: "tuple[int, int]" = (2, 3),
    max_value: float = 10.0,
    allow_ties: bool = True,
):
    """Populations of minimized objective vectors (uniform arity per draw).

    Covers both the classic 2-objective ranking and the robustness-aware
    3-objective one. ``allow_ties`` draws from a coarse grid so duplicate
    vectors (the NSGA-II tie-handling edge) actually occur.
    """
    values = (
        st.integers(0, 5).map(float) if allow_ties else st.floats(0, max_value)
    )

    def _population(arity: int):
        vector = st.tuples(*([values] * arity))
        return st.lists(vector, min_size=min_size, max_size=max_size)

    return st.integers(n_objectives[0], n_objectives[1]).flatmap(_population)


#: Operand-width multisets for the adder-tree cost kernels.
operand_width_lists = st.lists(
    st.integers(1, 15), min_size=2, max_size=24
)


# -- campaign-fabric lease protocol -------------------------------------------------


#: Operation vocabulary for :func:`lease_event_sequences`.
LEASE_OPS = ("acquire", "renew", "release", "advance", "remove")


@st.composite
def lease_event_sequences(
    draw,
    n_workers: int = 3,
    n_jobs: int = 3,
    max_events: int = 40,
    ttl: float = 10.0,
):
    """Operation sequences over a shared lease directory.

    Each event is a tuple ``(op, worker, job)`` with ``op`` drawn from
    :data:`LEASE_OPS` (``advance`` carries seconds instead of a job, and
    ``remove`` models administrative reaping by a coordinator). Sequences
    deliberately include nonsense (renewing a lease never held, releasing
    twice, advancing past several TTLs) — the lease-safety invariant must
    hold under arbitrary interleavings, not just polite ones.
    """
    workers = [f"w{i}" for i in range(n_workers)]
    jobs = [f"job{i}" for i in range(n_jobs)]
    events = []
    for _ in range(draw(st.integers(1, max_events))):
        op = draw(st.sampled_from(LEASE_OPS))
        if op == "advance":
            events.append((op, None, draw(st.floats(0.1, ttl * 1.5))))
        elif op == "remove":
            events.append((op, None, draw(st.sampled_from(jobs))))
        else:
            events.append(
                (op, draw(st.sampled_from(workers)), draw(st.sampled_from(jobs)))
            )
    return events
