"""Reusable Hypothesis strategies for the property-based test layer.

The equality-style tests of this suite (fast path == reference, vectorized
== loop, robust == serial) all quantify over the same domains: genomes,
quantized weight tensors, objective vectors and fault-injection
configurations. Centralizing the strategies here keeps the domains honest —
every property test draws from the full space the production code accepts,
edge values (empty masks, rate 0.0/1.0, duplicate objectives) included.

Import as a plain module (``from strategies import genomes``): ``tests/`` is
on ``sys.path`` during collection and the name collides with nothing in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.hardware.fixed_point import max_symmetric_level
from repro.reliability import FAULT_MODELS, FaultInjectionConfig
from repro.search.genome import (
    DEFAULT_BIT_CHOICES,
    DEFAULT_CLUSTER_CHOICES,
    DEFAULT_SPARSITY_CHOICES,
    Genome,
)

#: Seeds for ``np.random.default_rng`` inside properties that need a
#: generator: hypothesis shrinks over the seed, numpy supplies the stream.
rng_seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def genomes(draw, min_layers: int = 1, max_layers: int = 4):
    """A :class:`repro.search.Genome` over the default gene alphabets."""
    n_layers = draw(st.integers(min_layers, max_layers))
    return Genome(
        weight_bits=tuple(
            draw(st.sampled_from(DEFAULT_BIT_CHOICES)) for _ in range(n_layers)
        ),
        sparsity=tuple(
            draw(st.sampled_from(DEFAULT_SPARSITY_CHOICES)) for _ in range(n_layers)
        ),
        clusters=tuple(
            draw(st.sampled_from(DEFAULT_CLUSTER_CHOICES)) for _ in range(n_layers)
        ),
    )


@st.composite
def weight_tensors(
    draw,
    max_rows: int = 12,
    max_cols: int = 12,
    max_magnitude: float = 8.0,
):
    """A float64 weight matrix, including all-zero and single-element shapes."""
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    values = draw(
        st.lists(
            st.floats(
                min_value=-max_magnitude,
                max_value=max_magnitude,
                allow_nan=False,
                allow_infinity=False,
                width=64,
            ),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.asarray(values, dtype=np.float64).reshape(rows, cols)


@st.composite
def quantized_weight_tensors(draw, min_bits: int = 2, max_bits: int = 8):
    """``(integer weight matrix, bits)`` on the symmetric level grid."""
    bits = draw(st.integers(min_bits, max_bits))
    level = max_symmetric_level(bits)
    rows = draw(st.integers(1, 10))
    cols = draw(st.integers(1, 10))
    values = draw(
        st.lists(
            st.integers(-level, level), min_size=rows * cols, max_size=rows * cols
        )
    )
    return np.asarray(values, dtype=np.int64).reshape(rows, cols), bits


@st.composite
def fault_configs(draw, max_trials: int = 6):
    """A full-domain :class:`FaultInjectionConfig` (degenerate rates included)."""
    return FaultInjectionConfig(
        fault_rate=draw(
            st.one_of(st.just(0.0), st.just(1.0), st.floats(0.0, 1.0, width=32))
        ),
        fault_model=draw(st.sampled_from(FAULT_MODELS)),
        weight_bits=draw(st.integers(2, 8)),
        level_shift_levels=draw(st.integers(1, 3)),
        n_trials=draw(st.integers(1, max_trials)),
        seed=draw(st.integers(0, 2**16)),
        include_bias=draw(st.booleans()),
    )


def objective_vectors(
    min_size: int = 1,
    max_size: int = 40,
    n_objectives: "tuple[int, int]" = (2, 3),
    max_value: float = 10.0,
    allow_ties: bool = True,
):
    """Populations of minimized objective vectors (uniform arity per draw).

    Covers both the classic 2-objective ranking and the robustness-aware
    3-objective one. ``allow_ties`` draws from a coarse grid so duplicate
    vectors (the NSGA-II tie-handling edge) actually occur.
    """
    values = (
        st.integers(0, 5).map(float) if allow_ties else st.floats(0, max_value)
    )

    def _population(arity: int):
        vector = st.tuples(*([values] * arity))
        return st.lists(vector, min_size=min_size, max_size=max_size)

    return st.integers(n_objectives[0], n_objectives[1]).flatmap(_population)


#: Operand-width multisets for the adder-tree cost kernels.
operand_width_lists = st.lists(
    st.integers(1, 15), min_size=2, max_size=24
)


# -- serving-layer front documents --------------------------------------------------


#: Techniques that appear on report fronts (the baseline point is serialized
#: separately, under the document's ``baseline`` key).
FRONT_TECHNIQUES = ("quantization", "pruning", "clustering", "combined")


@st.composite
def front_rows(draw, robust: "bool | None" = None):
    """One front-row dict, shaped exactly like ``report.py`` serializes it.

    Values come from coarse grids so ties and duplicate criteria (the
    Pareto-dedup and stable-sort edges) actually occur. ``robust=True``
    adds the ``robust_accuracy``/``accuracy_std`` columns (the 3-objective
    arity), ``robust=False`` omits them (2-objective), and ``None`` draws
    per row — a mixed-arity front, which the store must still serve.
    """
    if robust is None:
        robust = draw(st.booleans())
    row = {
        "technique": draw(st.sampled_from(FRONT_TECHNIQUES)),
        "accuracy": draw(st.integers(0, 20)) / 20.0,
        "area": draw(st.integers(0, 10)) / 2.0,
        "power": draw(st.integers(0, 10)) / 2.0,
        "delay": draw(st.integers(0, 10)) / 4.0,
        "parameters": draw(
            st.one_of(
                st.just({}),
                st.fixed_dictionaries({"weight_bits": st.sampled_from([2, 3, 4, 6])}),
            )
        ),
    }
    if robust:
        row["robust_accuracy"] = draw(st.integers(0, 20)) / 20.0
        row["accuracy_std"] = draw(st.integers(0, 8)) / 100.0
    return row


@st.composite
def front_documents(
    draw,
    dataset: str = "seeds",
    min_points: int = 0,
    max_points: int = 10,
    robust: "bool | None" = None,
):
    """A full ``front_<dataset>.json`` document at 2- or 3-objective arity.

    The arity is uniform across the document when ``robust`` is ``None``
    (drawn once), matching real reports — every point of a robustness-on
    campaign carries the robust columns. Pass ``robust`` explicitly to pin
    the arity.
    """
    if robust is None:
        robust = draw(st.booleans())
    rows = draw(
        st.lists(front_rows(robust=robust), min_size=min_points, max_size=max_points)
    )
    return {
        "dataset": dataset,
        "baseline": {
            "technique": "baseline",
            "accuracy": draw(st.integers(10, 20)) / 20.0,
            "area": draw(st.integers(4, 20)) / 2.0,
            "power": draw(st.integers(1, 10)) / 2.0,
            "delay": draw(st.integers(1, 10)) / 4.0,
            "parameters": {},
        },
        "front": rows,
        "combined_best_gain": draw(st.integers(0, 40)) / 4.0,
    }


@st.composite
def front_query_payloads(draw, dataset: str = "seeds"):
    """A valid ``POST /query`` body exercising every query axis."""
    payload: "dict[str, object]" = {"dataset": dataset}
    if draw(st.booleans()):
        payload["min_accuracy"] = draw(st.integers(0, 20)) / 20.0
    for bound in ("max_area", "max_power"):
        if draw(st.booleans()):
            payload[bound] = draw(st.integers(0, 10)) / 2.0
    if draw(st.booleans()):
        payload["max_delay"] = draw(st.integers(0, 10)) / 4.0
    if draw(st.booleans()):
        payload["min_robust_accuracy"] = draw(st.integers(0, 20)) / 20.0
    payload["order_by"] = draw(
        st.sampled_from(("accuracy", "area", "power", "delay", "robust_accuracy"))
    )
    payload["descending"] = draw(st.booleans())
    if draw(st.booleans()):
        payload["top_k"] = draw(st.integers(1, 6))
    if draw(st.booleans()):
        payload["include_dominated"] = True
    return payload


# -- campaign-fabric lease protocol -------------------------------------------------


#: Operation vocabulary for :func:`lease_event_sequences`.
LEASE_OPS = ("acquire", "renew", "release", "advance", "remove")


@st.composite
def lease_event_sequences(
    draw,
    n_workers: int = 3,
    n_jobs: int = 3,
    max_events: int = 40,
    ttl: float = 10.0,
):
    """Operation sequences over a shared lease directory.

    Each event is a tuple ``(op, worker, job)`` with ``op`` drawn from
    :data:`LEASE_OPS` (``advance`` carries seconds instead of a job, and
    ``remove`` models administrative reaping by a coordinator). Sequences
    deliberately include nonsense (renewing a lease never held, releasing
    twice, advancing past several TTLs) — the lease-safety invariant must
    hold under arbitrary interleavings, not just polite ones.
    """
    workers = [f"w{i}" for i in range(n_workers)]
    jobs = [f"job{i}" for i in range(n_jobs)]
    events = []
    for _ in range(draw(st.integers(1, max_events))):
        op = draw(st.sampled_from(LEASE_OPS))
        if op == "advance":
            events.append((op, None, draw(st.floats(0.1, ttl * 1.5))))
        elif op == "remove":
            events.append((op, None, draw(st.sampled_from(jobs))))
        else:
            events.append(
                (op, draw(st.sampled_from(workers)), draw(st.sampled_from(jobs)))
            )
    return events
