"""Unit tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    available_initializers,
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    normal,
    ones,
    uniform,
    zeros,
)


@pytest.fixture
def gen():
    return np.random.default_rng(7)


class TestBasicInitializers:
    def test_zeros_shape_and_value(self, gen):
        out = zeros((3, 5), gen)
        assert out.shape == (3, 5)
        assert np.all(out == 0.0)

    def test_ones_shape_and_value(self, gen):
        out = ones((4,), gen)
        assert out.shape == (4,)
        assert np.all(out == 1.0)

    def test_uniform_respects_bounds(self, gen):
        out = uniform((200, 10), gen, low=-0.25, high=0.25)
        assert out.min() >= -0.25
        assert out.max() < 0.25

    def test_normal_moments(self, gen):
        out = normal((50, 400), gen, mean=2.0, std=0.5)
        assert abs(out.mean() - 2.0) < 0.05
        assert abs(out.std() - 0.5) < 0.05


class TestGlorotAndHe:
    def test_glorot_uniform_limit(self, gen):
        shape = (30, 20)
        limit = np.sqrt(6.0 / (shape[0] + shape[1]))
        out = glorot_uniform(shape, gen)
        assert np.all(np.abs(out) <= limit + 1e-12)

    def test_glorot_normal_std(self, gen):
        shape = (400, 400)
        out = glorot_normal(shape, gen)
        expected_std = np.sqrt(2.0 / (shape[0] + shape[1]))
        assert abs(out.std() - expected_std) / expected_std < 0.1

    def test_he_uniform_limit(self, gen):
        shape = (50, 10)
        limit = np.sqrt(6.0 / shape[0])
        out = he_uniform(shape, gen)
        assert np.all(np.abs(out) <= limit + 1e-12)

    def test_he_normal_std(self, gen):
        shape = (500, 100)
        out = he_normal(shape, gen)
        expected_std = np.sqrt(2.0 / shape[0])
        assert abs(out.std() - expected_std) / expected_std < 0.1

    def test_1d_shape_supported(self, gen):
        out = glorot_uniform((12,), gen)
        assert out.shape == (12,)


class TestRegistry:
    def test_all_registered_names_resolve(self, gen):
        for name in available_initializers():
            fn = get_initializer(name)
            out = fn((3, 3), gen)
            assert out.shape == (3, 3)

    def test_lookup_is_case_insensitive(self):
        assert get_initializer("Glorot_Uniform") is glorot_uniform

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_initializer("does_not_exist")

    def test_determinism_with_same_seed(self):
        a = glorot_uniform((6, 6), np.random.default_rng(3))
        b = glorot_uniform((6, 6), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = glorot_uniform((6, 6), np.random.default_rng(3))
        b = glorot_uniform((6, 6), np.random.default_rng(4))
        assert not np.array_equal(a, b)
