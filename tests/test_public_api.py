"""The redesigned public API surface and its backward-compatibility shims.

Three guarantees:

* every entry point documented in ``docs/api.md`` is importable from the
  package the doc says it lives in (the doc's tables are parsed, so adding
  a row without exporting the name fails here);
* the curated top-level ``repro`` namespace exposes the primary workflow
  objects and nothing in ``__all__`` is dangling;
* the pre-redesign deep-import paths keep working through module
  ``__getattr__`` shims that emit ``DeprecationWarning`` and return the
  canonical objects.
"""

from __future__ import annotations

import importlib
import re
import warnings
from pathlib import Path

import pytest

import repro

API_DOC = Path(__file__).resolve().parent.parent / "docs" / "api.md"


def _documented_entry_points():
    """``(module, name)`` for every entry point named in docs/api.md tables."""
    module = None
    entries = []
    for line in API_DOC.read_text().splitlines():
        heading = re.match(r"^## `([\w.]+)`", line)
        if heading:
            module = heading.group(1)
            continue
        if module is None or not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        for name in re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)", first_cell):
            entries.append((module, name))
    assert entries, f"no entry-point tables parsed from {API_DOC}"
    return sorted(set(entries))


class TestDocumentedApi:
    @pytest.mark.parametrize(
        "module,name",
        _documented_entry_points(),
        ids=[f"{m}.{n}" for m, n in _documented_entry_points()],
    )
    def test_every_documented_name_is_importable(self, module, name):
        imported = importlib.import_module(module)
        assert hasattr(imported, name), f"{module} does not export documented {name}"

    def test_documented_packages_export_all(self):
        for module in {m for m, _ in _documented_entry_points()}:
            imported = importlib.import_module(module)
            assert hasattr(imported, "__all__"), f"{module} lacks __all__"


class TestTopLevelNamespace:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists dangling {name}"

    def test_primary_workflow_objects_at_root(self):
        for name in [
            "PipelineConfig",
            "MinimizationPipeline",
            "GAConfig",
            "HardwareAwareGA",
            "EvaluationSettings",
            "resolve_evaluation_settings",
            "SerialEvaluator",
            "ParallelEvaluator",
            "create_evaluator",
            "CampaignSpec",
            "CampaignRunner",
            "monte_carlo_fault_injection",
            "FixedPointSimulator",
            "ArrayBackend",
            "resolve_backend",
            "available_backends",
        ]:
            assert name in repro.__all__ and hasattr(repro, name)

    def test_root_objects_are_the_canonical_ones(self):
        from repro.bespoke.simulator import FixedPointSimulator
        from repro.core.backend import resolve_backend
        from repro.search.settings import EvaluationSettings

        assert repro.FixedPointSimulator is FixedPointSimulator
        assert repro.resolve_backend is resolve_backend
        assert repro.EvaluationSettings is EvaluationSettings


class TestDeprecatedImportPaths:
    def test_objectives_evaluation_settings_shim(self):
        import repro.search.objectives as objectives
        from repro.search.settings import EvaluationSettings

        with pytest.warns(DeprecationWarning, match="repro.search.settings"):
            shimmed = objectives.EvaluationSettings
        assert shimmed is EvaluationSettings

    def test_ga_evaluation_settings_for_shim(self):
        import repro.search.ga as ga
        from repro.search.settings import evaluation_settings_for

        with pytest.warns(DeprecationWarning, match="repro.search.settings"):
            shimmed = ga.evaluation_settings_for
        assert shimmed is evaluation_settings_for

    def test_shims_do_not_swallow_real_attribute_errors(self):
        import repro.search.ga as ga
        import repro.search.objectives as objectives

        with pytest.raises(AttributeError):
            objectives.no_such_name
        with pytest.raises(AttributeError):
            ga.no_such_name

    def test_canonical_imports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.search import EvaluationSettings, evaluation_settings_for  # noqa: F401
            from repro.search.settings import resolve_evaluation_settings  # noqa: F401
