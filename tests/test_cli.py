"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("baseline", "figure1", "figure2", "ablations", "synth"):
            args = parser.parse_args([command] if command != "synth" else ["synth"])
            assert args.command == command

    def test_campaign_subcommand_registered(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "status", "--out", "somewhere"])
        assert args.command == "campaign"
        assert args.campaign_command == "status"

    def test_unknown_dataset_exits_cleanly(self, capsys):
        # A bogus dataset name must produce a clean error, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["baseline", "--dataset", "not-a-dataset", "--fast"])
        assert "not-a-dataset" in str(excinfo.value)

    def test_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["figure2"])
        assert args.dataset == "whitewine"
        assert args.population == 16
        assert args.workers == 1
        args = parser.parse_args(["figure2", "--workers", "4"])
        assert args.workers == 4
        args = parser.parse_args(["figure1"])
        assert args.dataset == "all"
        args = parser.parse_args(["synth", "--weight-bits", "4"])
        assert args.weight_bits == 4

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])


class TestCommands:
    """End-to-end CLI runs with the smallest usable settings (seeds + --fast)."""

    def test_baseline_command(self, capsys):
        exit_code = main(["baseline", "--dataset", "seeds", "--fast"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "seeds" in output
        assert "mm^2" in output

    def test_figure1_command_with_export_and_plot(self, capsys, tmp_path):
        exit_code = main(
            [
                "figure1",
                "--dataset",
                "seeds",
                "--fast",
                "--plot",
                "--output",
                str(tmp_path / "out"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "norm_area" in output
        assert "normalized area" in output            # the ASCII plot legend
        assert (tmp_path / "out" / "seeds_sweep.json").exists()
        assert (tmp_path / "out" / "seeds_points.csv").exists()

    def test_figure2_command_small_ga(self, capsys):
        exit_code = main(
            [
                "figure2",
                "--dataset",
                "seeds",
                "--fast",
                "--population",
                "4",
                "--generations",
                "1",
                "--finetune-epochs",
                "1",
                "--workers",
                "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "combined" in output

    def test_figure2_fault_flags(self, capsys):
        exit_code = main(
            [
                "figure2",
                "--dataset",
                "seeds",
                "--fast",
                "--population",
                "4",
                "--generations",
                "1",
                "--finetune-epochs",
                "1",
                "--fault-rate",
                "0.1",
                "--fault-trials",
                "3",
                "--fault-model",
                "short",
            ]
        )
        assert exit_code == 0
        assert "combined" in capsys.readouterr().out

    def test_fault_flag_validation(self):
        parser = build_parser()
        args = parser.parse_args(["figure2"])
        assert args.fault_rate is None and args.fault_trials is None
        assert args.fault_model is None
        args = parser.parse_args(
            ["figure2", "--fault-rate", "0.05", "--fault-trials", "8"]
        )
        assert args.fault_rate == 0.05 and args.fault_trials == 8
        with pytest.raises(SystemExit):
            parser.parse_args(["figure2", "--fault-rate", "1.5"])
        with pytest.raises(SystemExit):
            parser.parse_args(["figure2", "--fault-trials", "-2"])
        with pytest.raises(SystemExit):
            parser.parse_args(["figure2", "--fault-model", "bridging"])

    def test_synth_command_with_verilog(self, capsys, tmp_path):
        verilog_path = tmp_path / "seeds.v"
        exit_code = main(
            [
                "synth",
                "--dataset",
                "seeds",
                "--fast",
                "--weight-bits",
                "4",
                "--finetune-epochs",
                "2",
                "--verilog",
                str(verilog_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Normalized area" in output
        assert "agreement" in output
        assert verilog_path.exists()
        assert "module seeds_mlp" in verilog_path.read_text()

    def test_synth_command_without_quantization(self, capsys):
        exit_code = main(["synth", "--dataset", "seeds", "--fast"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "test accuracy" in output
