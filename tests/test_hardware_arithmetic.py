"""Unit tests for the arithmetic cost models (repro.hardware.arithmetic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.arithmetic import (
    adder_tree,
    adder_tree_from_widths,
    argmax_unit,
    comparator,
    constant_multiplier,
    neuron_output_width,
    register_bank,
    relu_unit,
    ripple_carry_adder,
    subtractor,
)
from repro.hardware.technology import egt_library

TECH = egt_library()


class TestRippleCarryAdder:
    def test_area_scales_linearly_with_width(self):
        assert ripple_carry_adder(8, TECH).area == pytest.approx(
            2 * ripple_carry_adder(4, TECH).area
        )

    def test_delay_scales_with_width(self):
        assert ripple_carry_adder(8, TECH).delay == pytest.approx(
            2 * ripple_carry_adder(4, TECH).delay
        )

    def test_gate_counts(self):
        assert ripple_carry_adder(6, TECH).gate_counts == {"FA": 6}

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0, TECH)

    def test_subtractor_costs_more_than_adder(self):
        assert subtractor(8, TECH).area > ripple_carry_adder(8, TECH).area


class TestConstantMultiplier:
    def test_zero_coefficient_is_free(self):
        assert constant_multiplier(0, 4, TECH).is_zero()

    def test_positive_power_of_two_is_free(self):
        for coefficient in (1, 2, 4, 64):
            assert constant_multiplier(coefficient, 4, TECH).is_zero()

    def test_negative_power_of_two_costs_only_inverters(self):
        cost = constant_multiplier(-4, 4, TECH)
        assert set(cost.gate_counts) == {"INV"}

    def test_cost_grows_with_nonzero_digits(self):
        cheap = constant_multiplier(3, 4, TECH)    # 1 CSD stage
        expensive = constant_multiplier(0b1010101, 4, TECH)  # many stages
        assert expensive.area > cheap.area

    def test_cost_grows_with_input_bits(self):
        assert (
            constant_multiplier(11, 8, TECH).area > constant_multiplier(11, 4, TECH).area
        )

    def test_csd_never_more_area_than_binary(self):
        for coefficient in range(1, 256):
            csd = constant_multiplier(coefficient, 4, TECH, method="csd")
            binary = constant_multiplier(coefficient, 4, TECH, method="binary")
            assert csd.area <= binary.area + 1e-12

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            constant_multiplier(5, 4, TECH, method="booth")

    def test_invalid_input_bits(self):
        with pytest.raises(ValueError):
            constant_multiplier(5, 0, TECH)

    @given(st.integers(min_value=-255, max_value=255), st.integers(min_value=2, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_cost_always_non_negative_and_finite(self, coefficient, input_bits):
        cost = constant_multiplier(coefficient, input_bits, TECH)
        assert cost.area >= 0.0
        assert cost.power >= 0.0
        assert cost.delay >= 0.0


class TestAdderTrees:
    def test_zero_or_one_operand_free(self):
        assert adder_tree(0, 8, TECH).is_zero()
        assert adder_tree(1, 8, TECH).is_zero()

    def test_n_minus_one_adders(self):
        for n_operands in (2, 3, 5, 9):
            cost = adder_tree(n_operands, 4, TECH)
            # Widths grow along the tree, so gate count >= (n-1) * width.
            assert cost.gate_counts["FA"] >= (n_operands - 1) * 4

    def test_area_monotone_in_operands(self):
        areas = [adder_tree(n, 8, TECH).area for n in range(2, 12)]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            adder_tree(-1, 8, TECH)
        with pytest.raises(ValueError):
            adder_tree(4, 0, TECH)

    def test_width_aware_tree_cheaper_for_narrow_operands(self):
        uniform = adder_tree_from_widths([12] * 8, TECH)
        narrow = adder_tree_from_widths([5, 5, 6, 6, 7, 7, 8, 8], TECH)
        assert narrow.area < uniform.area

    def test_width_aware_tree_single_operand_free(self):
        assert adder_tree_from_widths([7], TECH).is_zero()

    def test_width_aware_tree_invalid_width(self):
        with pytest.raises(ValueError):
            adder_tree_from_widths([4, 0], TECH)

    def test_width_aware_matches_uniform_for_equal_widths(self):
        uniform = adder_tree(6, 10, TECH)
        width_aware = adder_tree_from_widths([10] * 6, TECH)
        # Same number of adders; widths may differ slightly by construction,
        # so allow a modest tolerance.
        assert width_aware.area == pytest.approx(uniform.area, rel=0.2)

    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_width_aware_tree_properties(self, widths):
        cost = adder_tree_from_widths(widths, TECH)
        assert cost.area > 0.0
        assert cost.gate_counts["FA"] >= (len(widths) - 1) * min(widths)


class TestAuxiliaryUnits:
    def test_relu_unit_scales_with_width(self):
        assert relu_unit(16, TECH).area > relu_unit(8, TECH).area
        with pytest.raises(ValueError):
            relu_unit(0, TECH)

    def test_comparator_is_a_subtractor(self):
        assert comparator(8, TECH).area == pytest.approx(subtractor(8, TECH).area)

    def test_argmax_single_class_free(self):
        assert argmax_unit(1, 8, 1, TECH).is_zero()

    def test_argmax_cost_grows_with_classes(self):
        areas = [argmax_unit(n, 10, 4, TECH).area for n in range(2, 11)]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_argmax_invalid(self):
        with pytest.raises(ValueError):
            argmax_unit(0, 8, 3, TECH)

    def test_register_bank(self):
        assert register_bank(0, TECH).is_zero()
        assert register_bank(12, TECH).gate_counts == {"DFF": 12}
        with pytest.raises(ValueError):
            register_bank(-1, TECH)


class TestNeuronOutputWidth:
    def test_single_operand(self):
        assert neuron_output_width(4, 8, 1) == 13

    def test_growth_with_operands(self):
        assert neuron_output_width(4, 8, 8) == 4 + 8 + 3 + 1

    def test_zero_operands_defaults(self):
        assert neuron_output_width(4, 8, 0) == 13

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            neuron_output_width(0, 8, 2)
