"""Tests for the fault-injection / reliability analysis (repro.reliability)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.pruning import prune_by_magnitude
from repro.quantization import attach_quantizers
from repro.reliability import (
    FAULT_MODELS,
    FaultInjectionConfig,
    FaultInjectionResult,
    compare_fault_tolerance,
    fault_rate_sweep,
    inject_faults,
    run_fault_injection,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "reliability_golden.json"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_rate": -0.1},
            {"fault_rate": 1.5},
            {"fault_model": "bridging"},
            {"weight_bits": 1},
            {"level_shift_levels": 0},
            {"n_trials": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjectionConfig(**kwargs)

    def test_fault_models_constant(self):
        assert set(FAULT_MODELS) == {"open", "short", "level_shift"}


class TestInjectFaults:
    def test_zero_rate_injects_nothing(self, seeds_model):
        candidate = seeds_model.clone()
        before = [layer.weights.copy() for layer in candidate.dense_layers]
        count = inject_faults(
            candidate, FaultInjectionConfig(fault_rate=0.0), np.random.default_rng(0)
        )
        assert count == 0
        for layer, original in zip(candidate.dense_layers, before):
            np.testing.assert_array_equal(layer.weights, original)

    def test_open_faults_zero_weights(self, seeds_model):
        candidate = seeds_model.clone()
        nonzero_before = sum(
            np.count_nonzero(layer.effective_weights()) for layer in candidate.dense_layers
        )
        count = inject_faults(
            candidate,
            FaultInjectionConfig(fault_rate=0.2, fault_model="open"),
            np.random.default_rng(0),
        )
        nonzero_after = sum(
            np.count_nonzero(layer.effective_weights()) for layer in candidate.dense_layers
        )
        assert count > 0
        assert nonzero_after == nonzero_before - count

    def test_short_faults_set_extreme_values(self, seeds_model):
        candidate = seeds_model.clone()
        config = FaultInjectionConfig(fault_rate=0.3, fault_model="short", weight_bits=8)
        inject_faults(candidate, config, np.random.default_rng(1))
        max_abs = max(np.abs(layer.weights).max() for layer in candidate.dense_layers)
        original_max = max(np.abs(layer.weights).max() for layer in seeds_model.dense_layers)
        assert max_abs >= original_max * 0.99

    def test_level_shift_changes_weights_slightly(self, seeds_model):
        candidate = seeds_model.clone()
        config = FaultInjectionConfig(
            fault_rate=0.3, fault_model="level_shift", weight_bits=6, level_shift_levels=1
        )
        inject_faults(candidate, config, np.random.default_rng(2))
        deltas = [
            np.abs(c.weights - o.weights).max()
            for c, o in zip(candidate.dense_layers, seeds_model.dense_layers)
        ]
        assert max(deltas) > 0.0

    def test_pruned_connections_not_eligible(self, seeds_model):
        candidate = seeds_model.clone()
        prune_by_magnitude(candidate, 0.5)
        config = FaultInjectionConfig(fault_rate=1.0, fault_model="short", weight_bits=8)
        inject_faults(candidate, config, np.random.default_rng(0))
        # Shorted weights only appear where the mask allows hardware.
        for layer in candidate.dense_layers:
            assert np.all(layer.effective_weights()[layer.mask == 0.0] == 0.0)


class TestCampaigns:
    def test_run_fault_injection_result_fields(self, seeds_model, seeds_data):
        config = FaultInjectionConfig(fault_rate=0.05, n_trials=5, seed=0)
        result = run_fault_injection(
            seeds_model, seeds_data.test.features, seeds_data.test.labels, config
        )
        assert isinstance(result, FaultInjectionResult)
        assert len(result.accuracy_per_trial) == 5
        assert result.worst_accuracy <= result.mean_accuracy <= 1.0
        assert result.fault_free_accuracy >= result.worst_accuracy - 1e-9
        assert result.mean_accuracy_drop >= -0.05
        assert "fault_model" in result.as_dict()

    def test_original_model_untouched(self, seeds_model, seeds_data):
        before = seeds_model.dense_layers[0].weights.copy()
        run_fault_injection(
            seeds_model,
            seeds_data.test.features,
            seeds_data.test.labels,
            FaultInjectionConfig(fault_rate=0.2, n_trials=3),
        )
        np.testing.assert_array_equal(seeds_model.dense_layers[0].weights, before)

    def test_deterministic_given_seed(self, seeds_model, seeds_data):
        config = FaultInjectionConfig(fault_rate=0.1, n_trials=4, seed=11)
        first = run_fault_injection(
            seeds_model, seeds_data.test.features, seeds_data.test.labels, config
        )
        second = run_fault_injection(
            seeds_model, seeds_data.test.features, seeds_data.test.labels, config
        )
        assert first.accuracy_per_trial == second.accuracy_per_trial

    def test_higher_fault_rates_hurt_more(self, seeds_model, seeds_data):
        results = fault_rate_sweep(
            seeds_model,
            seeds_data.test.features,
            seeds_data.test.labels,
            fault_rates=(0.02, 0.3),
            fault_model="short",
            n_trials=8,
            seed=0,
        )
        assert results[0].mean_accuracy >= results[1].mean_accuracy

    def test_accuracy_std_matches_per_trial_accuracies(self, seeds_model, seeds_data):
        result = run_fault_injection(
            seeds_model,
            seeds_data.test.features,
            seeds_data.test.labels,
            FaultInjectionConfig(fault_rate=0.2, n_trials=6, seed=1),
        )
        assert result.accuracy_std == float(np.std(result.accuracy_per_trial))
        assert result.as_dict()["accuracy_std"] == result.accuracy_std
        assert FaultInjectionResult(
            config=result.config,
            fault_free_accuracy=1.0,
            mean_accuracy=1.0,
            worst_accuracy=1.0,
        ).accuracy_std == 0.0

    def test_compare_fault_tolerance_designs(self, seeds_model, seeds_data):
        quantized = seeds_model.clone()
        attach_quantizers(quantized, 3)
        comparison = compare_fault_tolerance(
            {"baseline": seeds_model, "quantized": quantized},
            seeds_data.test.features,
            seeds_data.test.labels,
            FaultInjectionConfig(fault_rate=0.05, n_trials=3, seed=0),
        )
        assert set(comparison) == {"baseline", "quantized"}
        for result in comparison.values():
            assert 0.0 <= result.mean_accuracy <= 1.0


class TestGoldenRegression:
    """Pin the float-model sweep outputs with a checked-in fixture.

    The fixture (``tests/data/reliability_golden.json``) was generated from
    the shared Seeds classifier before the Monte-Carlo vectorization work
    started, so any numeric drift in ``fault_rate_sweep`` /
    ``compare_fault_tolerance`` — however it sneaks in — fails loudly. Exact
    float equality is intended: these paths are fully seeded.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @staticmethod
    def _assert_matches(result, expected):
        document = dict(
            result.as_dict(),
            accuracy_per_trial=result.accuracy_per_trial,
            faults_per_trial=result.faults_per_trial,
        )
        assert document == expected

    def test_fault_rate_sweep_pinned(self, seeds_model, seeds_data, golden):
        sweep = fault_rate_sweep(
            seeds_model,
            seeds_data.test.features,
            seeds_data.test.labels,
            fault_rates=(0.01, 0.05, 0.2),
            fault_model="open",
            n_trials=6,
            weight_bits=8,
            seed=0,
        )
        assert len(sweep) == len(golden["fault_rate_sweep"])
        for result, expected in zip(sweep, golden["fault_rate_sweep"]):
            self._assert_matches(result, expected)

    def test_compare_fault_tolerance_pinned(self, seeds_model, seeds_data, golden):
        minimized = seeds_model.clone()
        prune_by_magnitude(minimized, 0.4)
        attach_quantizers(minimized, 4)
        comparison = compare_fault_tolerance(
            {"baseline": seeds_model, "minimized": minimized},
            seeds_data.test.features,
            seeds_data.test.labels,
            FaultInjectionConfig(
                fault_rate=0.1, fault_model="short", weight_bits=8, n_trials=5, seed=3
            ),
        )
        assert set(comparison) == set(golden["compare_fault_tolerance"])
        for name, result in comparison.items():
            self._assert_matches(result, golden["compare_fault_tolerance"][name])
