"""Tests for repro.quantization: quantizers, QAT, PTQ, and the bit-width sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import load_dataset, prepare_split, train_val_test_split
from repro.nn import build_mlp
from repro.quantization import (
    PowerOfTwoQuantizer,
    QATConfig,
    SymmetricQuantizer,
    attach_quantizers,
    detach_quantizers,
    layer_quantization_error,
    post_training_quantize,
    ptq_bitwidth_sensitivity,
    quantization_snr,
    quantize_aware_train,
    quantize_tensor,
    quantization_sweep,
    quantized_copy,
    weight_bits_used,
)


class TestSymmetricQuantizer:
    def test_output_on_grid(self):
        quantizer = SymmetricQuantizer(bits=3)
        values = np.random.default_rng(0).normal(size=100)
        quantized = quantizer(values)
        scale = quantizer.format_for(values).scale
        levels = quantized / scale
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-9)

    def test_number_of_levels_bounded(self):
        quantizer = SymmetricQuantizer(bits=3)
        values = np.linspace(-1, 1, 1000)
        assert len(np.unique(quantizer(values))) <= 7

    def test_calibrated_scale_frozen(self):
        quantizer = SymmetricQuantizer(bits=4).calibrate(np.array([-2.0, 2.0]))
        assert quantizer.scale == pytest.approx(2.0 / 7)
        # New data does not change the scale once calibrated.
        quantized = quantizer(np.array([10.0]))
        assert quantized[0] == pytest.approx(7 * quantizer.scale)

    def test_integer_levels_consistent(self):
        quantizer = SymmetricQuantizer(bits=5)
        values = np.random.default_rng(1).normal(size=30)
        integers = quantizer.integer_levels(values)
        fmt = quantizer.format_for(values)
        np.testing.assert_allclose(quantizer(values), integers * fmt.scale)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SymmetricQuantizer(bits=1)
        with pytest.raises(ValueError):
            SymmetricQuantizer(bits=4, scale=-1.0)

    def test_quantize_tensor_helper(self):
        values = np.array([0.1, -0.9, 0.5])
        np.testing.assert_allclose(
            quantize_tensor(values, 4), SymmetricQuantizer(bits=4)(values)
        )

    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_error_bounded_by_half_step(self, bits, values):
        values = np.array(values)
        quantizer = SymmetricQuantizer(bits=bits)
        quantized = quantizer(values)
        scale = quantizer.format_for(values).scale
        assert np.all(np.abs(values - quantized) <= scale / 2 + 1e-9)


class TestPowerOfTwoQuantizer:
    def test_outputs_are_powers_of_two_of_max(self):
        quantizer = PowerOfTwoQuantizer(bits=4)
        values = np.array([0.8, 0.3, -0.1, 0.05, -0.8])
        quantized = quantizer(values)
        max_abs = np.max(np.abs(quantized))
        nonzero = np.abs(quantized[quantized != 0.0])
        ratios = np.log2(max_abs / nonzero)
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-9)

    def test_small_values_flushed_to_zero(self):
        quantizer = PowerOfTwoQuantizer(bits=2)
        quantized = quantizer(np.array([1.0, 1e-6]))
        assert quantized[1] == 0.0

    def test_integer_levels_are_powers_of_two(self):
        quantizer = PowerOfTwoQuantizer(bits=4)
        levels = quantizer.integer_levels(np.array([0.8, 0.41, 0.2, -0.1]))
        nonzero = np.abs(levels[levels != 0])
        assert all((int(v) & (int(v) - 1)) == 0 for v in nonzero)

    def test_zero_tensor(self):
        quantizer = PowerOfTwoQuantizer(bits=3)
        np.testing.assert_array_equal(quantizer(np.zeros(4)), np.zeros(4))


class TestQATAndPTQ:
    @pytest.fixture(scope="class")
    def data(self):
        dataset = load_dataset("seeds")
        return prepare_split(train_val_test_split(dataset, seed=0), input_bits=4)

    @pytest.fixture(scope="class")
    def trained(self, data):
        from repro.nn import train_classifier

        model = build_mlp(7, (4,), 3, seed=0)
        train_classifier(
            model, data.train.features, data.train.labels,
            data.validation.features, data.validation.labels, epochs=60, seed=0,
        )
        return model

    def test_attach_and_detach(self, trained):
        model = trained.clone()
        quantizers = attach_quantizers(model, 4)
        assert len(quantizers) == 2
        assert weight_bits_used(model) == [4, 4]
        detach_quantizers(model)
        assert weight_bits_used(model) == [None, None]

    def test_per_layer_bits(self, trained):
        model = trained.clone()
        attach_quantizers(model, (3, 5))
        assert weight_bits_used(model) == [3, 5]

    def test_per_layer_bits_wrong_length(self, trained):
        with pytest.raises(ValueError):
            attach_quantizers(trained.clone(), (3, 5, 7))

    def test_effective_weights_on_grid_after_attach(self, trained):
        model = trained.clone()
        attach_quantizers(model, 3)
        for layer in model.dense_layers:
            effective = layer.effective_weights()
            assert len(np.unique(effective)) <= 7

    def test_qat_recovers_accuracy_at_low_bits(self, data, trained):
        float_accuracy = trained.evaluate_accuracy(data.test.features, data.test.labels)
        ptq_model = post_training_quantize(trained, 2).model
        ptq_accuracy = ptq_model.evaluate_accuracy(data.test.features, data.test.labels)
        qat_model = trained.clone()
        quantize_aware_train(qat_model, data, QATConfig(weight_bits=2, epochs=15), seed=0)
        qat_accuracy = qat_model.evaluate_accuracy(data.test.features, data.test.labels)
        assert qat_accuracy >= ptq_accuracy - 0.02
        assert qat_accuracy >= float_accuracy - 0.25

    def test_quantized_copy_leaves_original_untouched(self, data, trained):
        original_weights = trained.dense_layers[0].weights.copy()
        copy = quantized_copy(trained, 3, data=data, epochs=3, seed=0)
        np.testing.assert_array_equal(trained.dense_layers[0].weights, original_weights)
        assert trained.dense_layers[0].weight_quantizer is None
        assert copy.dense_layers[0].weight_quantizer is not None

    def test_ptq_freezes_scales(self, trained, data):
        result = post_training_quantize(trained, 4, data=data)
        assert len(result.scales) == 2
        assert all(s > 0 for s in result.scales)
        assert result.accuracy is not None

    def test_ptq_wrong_bits_length(self, trained):
        with pytest.raises(ValueError):
            post_training_quantize(trained, (4, 4, 4))

    def test_ptq_sensitivity_monotone_trend(self, trained, data):
        sensitivity = ptq_bitwidth_sensitivity(trained, data, bit_range=(2, 4, 8))
        assert sensitivity[8] >= sensitivity[2] - 0.05

    def test_layer_quantization_error_decreases_with_bits(self, trained):
        coarse = layer_quantization_error(trained, 2)
        fine = layer_quantization_error(trained, 8)
        assert all(f <= c for c, f in zip(coarse, fine))

    def test_quantization_snr_increases_with_bits(self, trained):
        low = trained.clone()
        attach_quantizers(low, 2)
        high = trained.clone()
        attach_quantizers(high, 7)
        assert quantization_snr(high) > quantization_snr(low)

    def test_quantization_snr_infinite_without_quantizer(self, trained):
        assert quantization_snr(trained) == float("inf")

    def test_quantization_sweep_points(self, trained, data):
        points = quantization_sweep(
            trained, data, bit_range=(2, 4, 6), qat_epochs=3, seed=0
        )
        assert [p.parameters["weight_bits"] for p in points] == [2, 4, 6]
        assert all(p.technique == "quantization" for p in points)
        areas = [p.area for p in points]
        assert areas[0] < areas[-1]  # fewer bits -> smaller circuit

    def test_quantization_sweep_does_not_mutate_baseline(self, trained, data):
        before = trained.dense_layers[0].weights.copy()
        quantization_sweep(trained, data, bit_range=(3,), qat_epochs=2, seed=0)
        np.testing.assert_array_equal(trained.dense_layers[0].weights, before)
        assert trained.dense_layers[0].weight_quantizer is None
