"""Tests for repro.analysis: tables, ASCII plots and experiment export."""

import json

import pytest

from repro.analysis import (
    TECHNIQUE_MARKERS,
    export_comparison,
    export_sweep,
    front_plot,
    gains_table,
    render_csv,
    render_markdown_table,
    render_table,
    scatter_plot,
    sweep_csv,
    sweep_plot,
    sweep_rows,
    sweep_table,
)
from repro.core.results import DesignPoint, SweepResult


def point(accuracy, area, technique="quantization", **params):
    return DesignPoint(technique=technique, accuracy=accuracy, area=area, parameters=params)


@pytest.fixture
def sweep():
    baseline = point(0.9, 100.0, technique="baseline", weight_bits=8)
    result = SweepResult(dataset="toy", baseline=baseline)
    result.add(
        [
            point(0.88, 40.0, weight_bits=4),
            point(0.85, 20.0, weight_bits=3),
            point(0.87, 60.0, technique="pruning", target_sparsity=0.4),
            point(0.86, 55.0, technique="clustering", n_clusters=3),
            point(0.88, 18.0, technique="combined", weight_bits=[3, 3],
                  sparsity=[0.3, 0.3], clusters=[2, 2]),
        ]
    )
    return result


class TestGenericRenderers:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1.23456], ["longer", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "1.235" in text

    def test_render_table_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_render_markdown_table(self):
        text = render_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[1] == "|---|---|"

    def test_render_csv(self):
        text = render_csv(["a", "b"], [[1, 2.5]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,2.5")


class TestSweepViews:
    def test_rows_one_per_point(self, sweep):
        rows = sweep_rows(sweep)
        assert len(rows) == 5
        assert all(row[0] == "toy" for row in rows)

    def test_rows_pareto_only_smaller(self, sweep):
        assert len(sweep_rows(sweep, pareto_only=True)) < len(sweep_rows(sweep))

    def test_rows_filter_by_technique(self, sweep):
        rows = sweep_rows(sweep, technique="pruning")
        assert len(rows) == 1
        assert rows[0][1] == "pruning"

    def test_configuration_descriptions(self, sweep):
        rows = {row[1]: row[2] for row in sweep_rows(sweep)}
        assert rows["quantization"].endswith("-bit weights")
        assert rows["pruning"] == "40% sparsity"
        assert rows["clustering"] == "3 clusters/input"
        assert "bits=" in rows["combined"]

    def test_sweep_table_and_csv(self, sweep):
        table = sweep_table(sweep)
        assert "norm_area" in table.splitlines()[0]
        markdown = sweep_table(sweep, markdown=True)
        assert markdown.startswith("| dataset |")
        csv_text = sweep_csv(sweep)
        assert csv_text.splitlines()[0].startswith("dataset,technique")

    def test_gains_table_with_paper_row(self, sweep):
        from repro.core.pareto import area_gain_table

        gains = {"toy": area_gain_table(sweep)}
        text = gains_table(gains, paper_values={"quantization": 5.0})
        assert "toy" in text
        assert "(paper)" in text
        markdown = gains_table(gains, markdown=True)
        assert markdown.startswith("| dataset |")


class TestAsciiPlots:
    def test_scatter_contains_markers_and_axes(self, sweep):
        text = scatter_plot(sweep.points, sweep.baseline, title="toy panel")
        assert text.splitlines()[0] == "toy panel"
        assert "B" in text            # baseline marker
        assert "q" in text            # quantization marker
        assert "normalized area" in text

    def test_plot_dimensions(self, sweep):
        text = sweep_plot(sweep, width=40, height=10)
        data_lines = [line for line in text.splitlines() if line.startswith(("0.", "1.", " 0", " 1"))]
        assert len([l for l in text.splitlines() if "|" in l]) == 10

    def test_invalid_dimensions_rejected(self, sweep):
        with pytest.raises(ValueError):
            scatter_plot(sweep.points, sweep.baseline, width=5, height=5)

    def test_invalid_baseline_rejected(self, sweep):
        bad_baseline = DesignPoint(technique="baseline", accuracy=0.9, area=0.0)
        with pytest.raises(ValueError):
            scatter_plot(sweep.points, bad_baseline)

    def test_front_plot_runs(self, sweep):
        text = front_plot(sweep.points, sweep.baseline, title="front")
        assert "front" in text

    def test_all_techniques_have_markers(self):
        assert set(TECHNIQUE_MARKERS) == {
            "baseline", "quantization", "pruning", "clustering", "combined",
        }


class TestExport:
    def test_export_sweep_writes_all_artifacts(self, sweep, tmp_path):
        paths = export_sweep(sweep, tmp_path / "results")
        assert set(paths) == {"json", "csv", "markdown", "figure"}
        for path in paths.values():
            assert path.exists()
            assert path.stat().st_size > 0
        loaded = SweepResult.load_json(paths["json"])
        assert loaded.dataset == "toy"
        markdown = paths["markdown"].read_text()
        assert "Pareto points" in markdown

    def test_export_comparison(self, sweep, tmp_path):
        path = export_comparison(
            {"toy": sweep}, tmp_path, paper_values={"quantization": 5.0}
        )
        assert path.exists()
        data = json.loads((tmp_path / "comparison.json").read_text())
        assert "toy" in data
        assert "quantization" in data["toy"]
