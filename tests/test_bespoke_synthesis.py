"""Tests for the full bespoke circuit construction and synthesis reports."""

import pytest

from repro.bespoke.circuit import BespokeConfig, build_bespoke_circuit
from repro.bespoke.synthesis import report_from_circuit, synthesize, synthesize_baseline
from repro.hardware.technology import egt_library, silicon_library
from repro.nn.network import MLP, build_mlp
from repro.pruning.magnitude import prune_by_magnitude
from repro.quantization.qat import attach_quantizers


@pytest.fixture
def model():
    return build_mlp(6, (5,), 3, seed=0)


class TestBespokeConfig:
    def test_defaults(self):
        config = BespokeConfig()
        assert config.input_bits == 4
        assert config.weight_bits == 8
        assert config.share_products

    def test_per_layer_bits(self):
        config = BespokeConfig(weight_bits=(4, 6))
        assert config.bits_for_layer(0, 2) == 4
        assert config.bits_for_layer(1, 2) == 6

    def test_per_layer_bits_length_checked(self):
        config = BespokeConfig(weight_bits=(4, 6))
        with pytest.raises(ValueError):
            config.bits_for_layer(0, 3)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BespokeConfig(input_bits=0)
        with pytest.raises(ValueError):
            BespokeConfig(weight_bits=1)
        with pytest.raises(ValueError):
            BespokeConfig(weight_bits=())
        with pytest.raises(ValueError):
            BespokeConfig(multiplier_method="karatsuba")


class TestCircuitConstruction:
    def test_component_population(self, model):
        circuit = build_bespoke_circuit(model)
        kinds = circuit.netlist.count_by_kind()
        assert kinds["adder_tree"] == 5 + 3
        assert kinds["activation"] == 5          # hidden ReLUs only
        assert kinds["argmax"] == 1
        assert kinds["register"] == 2
        assert circuit.n_multipliers > 0

    def test_no_registers_when_disabled(self, model):
        circuit = build_bespoke_circuit(model, BespokeConfig(include_io_registers=False))
        assert circuit.netlist.count_by_kind().get("register", 0) == 0

    def test_requires_dense_layers(self):
        with pytest.raises(ValueError):
            build_bespoke_circuit(MLP([]))

    def test_weight_formats_match_layer_count(self, model):
        circuit = build_bespoke_circuit(model)
        assert len(circuit.weight_formats) == 2

    def test_metadata_fields(self, model):
        circuit = build_bespoke_circuit(model, name="toy")
        assert circuit.metadata["topology"] == [6, 5, 3]
        assert circuit.metadata["weight_bits"] == [8, 8]


class TestSynthesisReports:
    def test_report_totals_positive(self, model):
        report = synthesize(model, name="toy")
        assert report.area > 0
        assert report.power > 0
        assert report.delay > 0
        assert report.total_gates > 0
        assert report.technology == "EGT"

    def test_area_breakdown_sums_to_one(self, model):
        report = synthesize(model)
        assert sum(report.area_breakdown().values()) == pytest.approx(1.0)

    def test_by_layer_breakdown_covers_area(self, model):
        report = synthesize(model)
        total = sum(cost.area for cost in report.by_layer.values())
        assert total == pytest.approx(report.area)

    def test_lower_weight_bits_reduce_area(self, model):
        wide = synthesize(model, BespokeConfig(weight_bits=8))
        narrow = synthesize(model, BespokeConfig(weight_bits=3))
        assert narrow.area < wide.area

    def test_lower_input_bits_reduce_area(self, model):
        wide = synthesize(model, BespokeConfig(input_bits=8))
        narrow = synthesize(model, BespokeConfig(input_bits=4))
        assert narrow.area < wide.area

    def test_pruning_reduces_area(self, model):
        baseline = synthesize(model)
        pruned_model = model.clone()
        prune_by_magnitude(pruned_model, 0.5)
        pruned = synthesize(pruned_model)
        assert pruned.area < baseline.area
        assert pruned.n_multipliers < baseline.n_multipliers

    def test_quantizer_hooks_respected(self, model):
        quantized_model = model.clone()
        attach_quantizers(quantized_model, 2)
        report_q = synthesize(quantized_model, BespokeConfig(weight_bits=2))
        report_f = synthesize(model, BespokeConfig(weight_bits=8))
        assert report_q.area < report_f.area

    def test_silicon_technology_much_smaller(self, model):
        egt_report = synthesize(model, tech=egt_library())
        silicon_report = synthesize(model, tech=silicon_library())
        assert egt_report.area / silicon_report.area > 100

    def test_normalization_helpers(self, model):
        baseline = synthesize(model, BespokeConfig(weight_bits=8))
        small = synthesize(model, BespokeConfig(weight_bits=3))
        assert small.normalized_area(baseline) == pytest.approx(small.area / baseline.area)
        assert small.area_gain(baseline) == pytest.approx(baseline.area / small.area)
        assert small.normalized_power(baseline) < 1.0

    def test_format_summary_contains_key_lines(self, model):
        baseline = synthesize(model)
        text = baseline.format_summary()
        assert "Total area" in text
        assert "Constant mults" in text
        normalized = synthesize(model, BespokeConfig(weight_bits=4)).format_summary(baseline)
        assert "Normalized area" in text or "Normalized area" in normalized

    def test_as_dict_serializable(self, model):
        import json

        report = synthesize(model)
        json.dumps(report.as_dict())


class TestBaselineSynthesis:
    def test_baseline_ignores_masks_and_quantizers(self, model):
        reference = synthesize_baseline(model)
        modified = model.clone()
        prune_by_magnitude(modified, 0.6)
        attach_quantizers(modified, 2)
        from_modified = synthesize_baseline(modified)
        assert from_modified.area == pytest.approx(reference.area)

    def test_baseline_leaves_input_model_untouched(self, model):
        clone = model.clone()
        prune_by_magnitude(clone, 0.5)
        synthesize_baseline(clone)
        assert clone.dense_layers[0].mask is not None

    def test_report_from_circuit_matches_synthesize(self, model):
        circuit = build_bespoke_circuit(model, name="direct")
        report = report_from_circuit(circuit)
        assert report.area == pytest.approx(synthesize(model, name="direct").area)

    def test_delay_is_serial_across_layers(self, model):
        report = synthesize(model)
        per_layer_max = max(cost.delay for cost in report.by_kind.values())
        assert report.delay >= per_layer_max
