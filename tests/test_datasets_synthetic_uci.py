"""Tests for the synthetic generators and the UCI stand-in loaders/registry."""

import numpy as np
import pytest

from repro.datasets.registry import (
    PAPER_DATASETS,
    ClassifierSpec,
    available_datasets,
    get_classifier_spec,
    load_dataset,
    normalize_name,
    register_dataset,
)
from repro.datasets.synthetic import (
    GaussianClassSpec,
    SyntheticSpec,
    generate_gaussian_mixture,
    make_blobs,
)
from repro.datasets.uci import (
    dataset_statistics,
    load_pendigits,
    load_redwine,
    load_seeds,
    load_whitewine,
)


class TestSyntheticGenerator:
    def test_sample_count_exact(self):
        data = make_blobs(n_samples=137, n_features=3, n_classes=4, seed=0)
        assert data.n_samples == 137

    def test_determinism(self):
        a = make_blobs(100, 5, 3, seed=9)
        b = make_blobs(100, 5, 3, seed=9)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_different_data(self):
        a = make_blobs(100, 5, 3, seed=1)
        b = make_blobs(100, 5, 3, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_all_classes_present(self):
        data = make_blobs(60, 4, 6, seed=0)
        assert set(np.unique(data.labels)) == set(range(6))

    def test_class_weights_respected(self):
        spec = SyntheticSpec(
            n_samples=1000,
            n_features=2,
            class_specs=[GaussianClassSpec(weight=0.8), GaussianClassSpec(weight=0.2)],
            seed=0,
        )
        data = generate_gaussian_mixture(spec)
        balance = data.class_balance()
        assert abs(balance[0] - 0.8) < 0.05

    def test_label_noise_caps_separability(self):
        clean = generate_gaussian_mixture(
            SyntheticSpec(
                n_samples=400,
                n_features=4,
                class_specs=[GaussianClassSpec(), GaussianClassSpec()],
                class_separation=6.0,
                label_noise=0.0,
                seed=0,
            )
        )
        noisy = generate_gaussian_mixture(
            SyntheticSpec(
                n_samples=400,
                n_features=4,
                class_specs=[GaussianClassSpec(), GaussianClassSpec()],
                class_separation=6.0,
                label_noise=0.4,
                seed=0,
            )
        )
        # Nearest-centroid classification degrades with label noise.
        def centroid_accuracy(data):
            centroids = np.array(
                [data.features[data.labels == c].mean(axis=0) for c in range(2)]
            )
            distances = np.linalg.norm(
                data.features[:, None, :] - centroids[None, :, :], axis=2
            )
            return float(np.mean(np.argmin(distances, axis=1) == data.labels))

        assert centroid_accuracy(noisy) < centroid_accuracy(clean) - 0.1

    def test_separation_increases_separability(self):
        def spread(sep):
            data = make_blobs(300, 4, 3, class_separation=sep, seed=3)
            centroids = np.array(
                [data.features[data.labels == c].mean(axis=0) for c in range(3)]
            )
            return np.linalg.norm(centroids[0] - centroids[1])

        assert spread(6.0) > spread(1.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_samples=1, n_features=2, class_specs=[GaussianClassSpec()] * 2)
        with pytest.raises(ValueError):
            SyntheticSpec(n_samples=10, n_features=2, class_specs=[GaussianClassSpec()])
        with pytest.raises(ValueError):
            GaussianClassSpec(weight=0.0)
        with pytest.raises(ValueError):
            GaussianClassSpec(spread=-1.0)


class TestUCIStandIns:
    @pytest.mark.parametrize(
        "loader, n_features, n_classes",
        [
            (load_whitewine, 11, 7),
            (load_redwine, 11, 6),
            (load_pendigits, 16, 10),
            (load_seeds, 7, 3),
        ],
    )
    def test_dimensions_match_real_datasets(self, loader, n_features, n_classes):
        data = loader()
        assert data.n_features == n_features
        assert data.n_classes == n_classes
        assert len(data.feature_names) == n_features
        assert len(data.class_names) == n_classes

    def test_wine_datasets_are_imbalanced(self):
        # Label noise flattens the raw histogram a little, but the middle
        # quality grades must still dominate the extreme ones.
        balance = load_whitewine().class_balance()
        assert balance.max() / balance.min() > 4.0
        assert balance.max() > 0.3

    def test_pendigits_and_seeds_are_balanced(self):
        for loader in (load_pendigits, load_seeds):
            balance = loader().class_balance()
            assert balance.max() / balance.min() < 1.5

    def test_loaders_deterministic_by_default(self):
        a, b = load_seeds(), load_seeds()
        np.testing.assert_array_equal(a.features, b.features)

    def test_statistics_summary(self):
        stats = dataset_statistics(load_seeds())
        assert stats["name"] == "seeds"
        assert stats["n_samples"] == 210
        assert len(stats["class_balance"]) == 3


class TestRegistry:
    def test_paper_datasets_all_loadable(self):
        for name in PAPER_DATASETS:
            data = load_dataset(name)
            assert data.n_samples > 0

    def test_available_datasets_sorted(self):
        names = available_datasets()
        assert list(names) == sorted(names)
        assert set(PAPER_DATASETS).issubset(names)

    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("WhiteWine", "whitewine"),
            ("white wine", "whitewine"),
            ("wine-quality-red", "redwine"),
            ("PenDigits", "pendigits"),
            ("Seed", "seeds"),
        ],
    )
    def test_normalize_name_aliases(self, alias, expected):
        assert normalize_name(alias) == expected

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_loader_overrides(self):
        data = load_dataset("seeds", seed=123, n_samples=90)
        assert data.n_samples == 90

    def test_classifier_specs_have_expected_fields(self):
        for name in PAPER_DATASETS:
            spec = get_classifier_spec(name)
            assert spec.input_bits == 4
            assert spec.baseline_weight_bits == 8
            assert len(spec.hidden_layers) == 1

    def test_register_custom_dataset(self):
        def loader(seed=None, n_samples=30):
            from repro.datasets.synthetic import make_blobs

            return make_blobs(n_samples, 3, 2, seed=seed, name="custom_toy")

        spec = ClassifierSpec("custom_toy", hidden_layers=(3,))
        try:
            register_dataset("custom_toy", loader, spec)
            assert load_dataset("custom_toy").n_features == 3
            assert get_classifier_spec("custom_toy").hidden_layers == (3,)
            with pytest.raises(ValueError):
                register_dataset("custom_toy", loader, spec)
        finally:
            # keep the global registry clean for other tests
            from repro.datasets import registry

            registry._LOADERS.pop("customtoy", None)
            registry._CLASSIFIER_SPECS.pop("customtoy", None)
