"""Journal durability and the persistent on-disk evaluation cache."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignJournal,
    PersistentEvaluationCache,
    SimulatedCrash,
    evaluation_context_key,
    write_json_atomic,
)
from repro.core import DesignPoint, PipelineConfig
from repro.search import EvaluationSettings, Genome


def _genome(bits=4):
    return Genome(weight_bits=(bits,), sparsity=(0.2,), clusters=(0,))


def _point(accuracy=0.9, area=12.5):
    return DesignPoint(
        technique="combined",
        accuracy=accuracy,
        area=area,
        power=3.25,
        delay=0.125,
        parameters={"weight_bits": [4]},
    )


class TestJournal:
    def test_events_roundtrip_in_order(self, tmp_path):
        journal = CampaignJournal(tmp_path / "camp")
        journal.append("run_started", n_jobs=2)
        journal.append("job_started", job_id="a")
        journal.append("job_completed", job_id="a", wall_s=1.0)
        events = journal.events()
        assert [e["event"] for e in events] == [
            "run_started",
            "job_started",
            "job_completed",
        ]
        assert events[1]["job_id"] == "a"

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "camp")
        journal.append("run_started", n_jobs=1)
        with open(journal.manifest_path, "a") as handle:
            handle.write('{"event": "job_start')  # a SIGKILL mid-append
        assert [e["event"] for e in journal.events()] == ["run_started"]

    def test_completion_marker_is_result_json(self, tmp_path):
        journal = CampaignJournal(tmp_path / "camp")
        assert journal.completed_job_ids() == set()
        journal.write_job_artifacts("job-a", {"front": []}, {"status": "completed"})
        (journal.job_dir("job-b")).mkdir(parents=True)
        (journal.front_path("job-b")).write_text("{}")  # front without result
        assert journal.completed_job_ids() == {"job-a"}

    def test_failed_jobs_cleared_by_completion(self, tmp_path):
        journal = CampaignJournal(tmp_path / "camp")
        journal.append("job_failed", job_id="a", error="boom")
        assert journal.failed_job_ids() == {"a"}
        journal.append("job_completed", job_id="a")
        assert journal.failed_job_ids() == set()

    def test_write_json_atomic_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"x": 1})
        write_json_atomic(path, {"x": 2})
        assert json.loads(path.read_text()) == {"x": 2}
        assert list(tmp_path.iterdir()) == [path]


class TestEvaluationContextKey:
    def test_same_inputs_same_key(self):
        config = PipelineConfig(dataset="seeds", train_epochs=3)
        settings = EvaluationSettings(finetune_epochs=2)
        assert evaluation_context_key(config, settings, 0) == evaluation_context_key(
            PipelineConfig(dataset="seeds", train_epochs=3),
            EvaluationSettings(finetune_epochs=2),
            0,
        )

    @pytest.mark.parametrize(
        "other",
        [
            (PipelineConfig(dataset="seeds", train_epochs=4), EvaluationSettings(finetune_epochs=2), 0),
            (PipelineConfig(dataset="redwine", train_epochs=3), EvaluationSettings(finetune_epochs=2), 0),
            (PipelineConfig(dataset="seeds", train_epochs=3), EvaluationSettings(finetune_epochs=3), 0),
            (PipelineConfig(dataset="seeds", train_epochs=3), EvaluationSettings(finetune_epochs=2), 1),
        ],
    )
    def test_any_divergence_changes_key(self, other):
        base = evaluation_context_key(
            PipelineConfig(dataset="seeds", train_epochs=3),
            EvaluationSettings(finetune_epochs=2),
            0,
        )
        assert evaluation_context_key(*other) != base

    def test_none_settings_uses_defaults(self):
        config = PipelineConfig(dataset="seeds")
        assert evaluation_context_key(config, None, 0) == evaluation_context_key(
            config, EvaluationSettings(), 0
        )


class TestPersistentEvaluationCache:
    def test_roundtrips_points_across_instances(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            cache.put(_genome(4), _point(0.91, 10.0))
            cache.put(_genome(5), _point(0.93, 14.0))
            assert cache.n_persisted == 2

        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 2
        point = reloaded.get(_genome(4))
        assert point is not None
        assert point.accuracy == 0.91 and point.area == 10.0
        assert point.parameters == {"weight_bits": [4]}
        reloaded.close()

    def test_json_float_roundtrip_is_exact(self, tmp_path):
        accuracy = 0.9123456789012345  # full double precision
        area = 17.123456789012345
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            cache.put(_genome(), _point(accuracy, area))
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        point = reloaded.get(_genome())
        assert point.accuracy == accuracy  # bit-exact, not approximately
        assert point.area == area
        reloaded.close()

    def test_contexts_are_isolated(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx-a") as cache:
            cache.put(_genome(), _point())
        other = PersistentEvaluationCache(tmp_path, "ctx-b")
        assert other.get(_genome()) is None
        other.close()

    def test_duplicate_puts_persist_once(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            cache.put(_genome(), _point())
            cache.put(_genome(), _point())
        lines = (tmp_path / "ctx.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_truncated_tail_is_skipped_on_load(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            cache.put(_genome(4), _point())
        with open(tmp_path / "ctx.jsonl", "a") as handle:
            handle.write('{"genome": {"weight_bits": [5')  # killed mid-append
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 1
        assert reloaded.get(_genome(4)) is not None
        reloaded.close()

    def test_memory_bound_does_not_touch_disk(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx", max_entries=1) as cache:
            cache.put(_genome(4), _point())
            cache.put(_genome(5), _point())
            assert len(cache) == 1  # LRU evicted in memory
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 2  # both survive on disk
        reloaded.close()

    def test_fail_after_puts_raises_simulated_crash(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path, "ctx", fail_after_puts=2)
        cache.put(_genome(4), _point())
        with pytest.raises(SimulatedCrash):
            cache.put(_genome(5), _point())
        cache.close()
        # The crashing put still journaled its point first.
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 2
        reloaded.close()


class TestCacheHardening:
    """ISSUE-7 satellite: torn mid-record writes, fsync, shard rotation."""

    def test_torn_mid_record_write_does_not_poison_later_records(self, tmp_path):
        from repro.campaign.fabric import corrupt_record

        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            cache.put(_genome(2), _point(0.90, 10.0))
            cache.put(_genome(4), _point(0.91, 11.0))
            cache.put(_genome(6), _point(0.92, 12.0))
        corrupt_record(tmp_path / "ctx.jsonl", 1)  # torn sector, NOT the tail
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        # exactly the corrupted record is lost; the one AFTER it still loads
        assert reloaded.n_loaded == 2
        assert reloaded.get(_genome(2)) is not None
        assert reloaded.get(_genome(4)) is None
        assert reloaded.get(_genome(6)) is not None
        # re-evaluating the lost genome re-journals it for the next load
        reloaded.put(_genome(4), _point(0.91, 11.0))
        reloaded.close()
        again = PersistentEvaluationCache(tmp_path, "ctx")
        assert again.n_loaded == 3
        again.close()

    def test_rotation_seals_generations_and_reloads_all(self, tmp_path):
        with PersistentEvaluationCache(
            tmp_path, "ctx", rotate_max_bytes=1, fsync_on_rotation=True
        ) as cache:  # every put overflows: one generation per record
            cache.put(_genome(2), _point(0.90, 10.0))
            cache.put(_genome(4), _point(0.91, 11.0))
            cache.put(_genome(6), _point(0.92, 12.0))
            assert cache.n_rotations == 3
        shards = sorted(p.name for p in tmp_path.glob("ctx*.jsonl"))
        assert shards == [
            "ctx.g0001.jsonl", "ctx.g0002.jsonl", "ctx.g0003.jsonl", "ctx.jsonl"
        ]
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 3
        assert reloaded.n_rotations == 3  # resumes appending the last generation
        for bits in (2, 4, 6):
            assert reloaded.get(_genome(bits)) is not None
        reloaded.close()

    def test_corruption_in_one_generation_spares_the_others(self, tmp_path):
        from repro.campaign.fabric import truncate_tail

        with PersistentEvaluationCache(tmp_path, "ctx", rotate_max_bytes=1) as cache:
            cache.put(_genome(2), _point())
            cache.put(_genome(4), _point())
        truncate_tail(tmp_path / "ctx.jsonl", 5)  # tear the base generation
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 1
        assert reloaded.get(_genome(4)) is not None
        reloaded.close()

    def test_fsync_per_put_roundtrips(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx", fsync=True) as cache:
            cache.put(_genome(4), _point())
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 1
        reloaded.close()

    def test_rotate_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            PersistentEvaluationCache(tmp_path, "ctx", rotate_max_bytes=0)
