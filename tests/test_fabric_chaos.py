"""Chaos golden tests: fabric campaigns are byte-identical to serial runs.

The ISSUE-7 acceptance criterion. For every fault class — worker killed
mid-evaluation, heartbeat stall, truncated journal tail, duplicate/stale
lease, clock skew — a coordinator + workers campaign driven through the
chaos harness must produce ``front.json`` and ``report/summary.json``
bytes identical to an uninterrupted single-host run, with duplicated
evaluations deduped through the shared persistent cache.

Real executor, tiny pipeline: each scenario runs a full 2-job campaign.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, build_report, write_report
from repro.campaign.fabric import (
    ChaosKill,
    ChaosPolicy,
    FabricCoordinator,
    FabricWorker,
    FaultSpec,
    ManualClock,
    SkewedClock,
    forge_lease,
    truncate_tail,
)

TTL = 10.0
JOB_IDS = ("seeds-random-s0", "seeds-random-s1")


def _spec():
    return CampaignSpec.from_dict(
        {
            "name": "chaos-golden",
            "datasets": ["seeds"],
            "seeds": [0, 1],
            "pipeline": {"train_epochs": 3, "n_samples": 120, "finetune_epochs": 1},
            "searches": [{"algorithm": "random", "n_evaluations": 3}],
        }
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted single-host run every chaos scenario must match."""
    directory = tmp_path_factory.mktemp("reference") / "camp"
    summary = CampaignRunner(_spec(), directory).run()
    assert summary.ok
    write_report(directory, build_report(directory))
    return directory


def _coordinator(tmp_path, clock, **kwargs):
    kwargs.setdefault("lease_ttl", TTL)
    kwargs.setdefault("worker_timeout", 0.0)
    kwargs.setdefault("now_fn", clock)
    kwargs.setdefault("sleep_fn", lambda s: None)
    return FabricCoordinator(_spec(), tmp_path / "camp", **kwargs)


def _worker(coordinator, worker_id, clock, **kwargs):
    kwargs.setdefault("lease_ttl", TTL)
    kwargs.setdefault("now_fn", clock)
    kwargs.setdefault("sleep_fn", lambda s: None)
    return FabricWorker(coordinator.directory, worker_id=worker_id, **kwargs)


def _drain(coordinator, worker, clock, max_steps=30):
    """Healthy worker + coordinator until the campaign is terminal."""
    for _ in range(max_steps):
        status = coordinator.step()
        if status.all_done:
            return status
        if worker.step() == "idle":
            clock.advance(TTL + 1)
    raise AssertionError("fabric failed to converge")


def _assert_bytes_identical(reference, directory):
    write_report(directory, build_report(directory))
    for job_id in JOB_IDS:
        assert (directory / "jobs" / job_id / "front.json").read_bytes() == (
            reference / "jobs" / job_id / "front.json"
        ).read_bytes(), f"front.json diverged for {job_id}"
    for name in ("summary.json", "front_seeds.json", "front_seeds.csv"):
        assert (directory / "report" / name).read_bytes() == (
            reference / "report" / name
        ).read_bytes(), f"report/{name} diverged"


class TestChaosGolden:
    def test_worker_killed_mid_evaluation(self, tmp_path, reference):
        """SIGKILL between two journaled evaluations: the job is requeued and
        the replacement fast-forwards through the dead worker's cache."""
        clock = ManualClock()
        coordinator = _coordinator(tmp_path, clock)
        coordinator.publish()
        doomed = _worker(
            coordinator,
            "doomed",
            clock,
            chaos=ChaosPolicy(faults=(FaultSpec("evaluation_put", "kill", after=1),)),
        )
        with pytest.raises(ChaosKill):
            doomed.step()  # dies holding the lease, 2 evaluations journaled
        clock.advance(TTL + 1)  # its lease expires
        status = _drain(coordinator, _worker(coordinator, "healthy", clock), clock)
        assert status.complete
        _assert_bytes_identical(reference, coordinator.directory)
        # dedupe proof: the re-run preloaded the dead worker's evaluations
        preloaded = [
            json.loads(
                (coordinator.directory / "jobs" / job_id / "result.json").read_text()
            )["cache"]["preloaded"]
            for job_id in JOB_IDS
        ]
        assert max(preloaded) >= 2, f"expected cache fast-forward, got {preloaded}"

    def test_heartbeat_stall(self, tmp_path, reference):
        """A hung worker keeps its lease without heartbeating: the coordinator
        requeues the job, and the sleeper finds its lease gone on waking."""
        clock = ManualClock()
        coordinator = _coordinator(tmp_path, clock)
        coordinator.publish()
        sleeper = _worker(
            coordinator,
            "sleeper",
            clock,
            chaos=ChaosPolicy(faults=(FaultSpec("job_started", "stall", count=2),)),
        )
        assert sleeper.step() == "stalled"
        clock.advance(TTL + 1)
        status = _drain(coordinator, _worker(coordinator, "healthy", clock), clock)
        assert status.complete
        assert sleeper.step() == "stalled"
        assert sleeper.step() == "abandoned"  # wakes to a stolen lease
        _assert_bytes_identical(reference, coordinator.directory)

    def test_truncated_journal_tail(self, tmp_path, reference):
        """A worker's journal torn mid-record (kill during append) merges as
        a clean prefix; completion comes from artifacts, so nothing is lost."""
        clock = ManualClock()
        coordinator = _coordinator(tmp_path, clock)
        coordinator.publish()
        scribe = _worker(coordinator, "scribe", clock)
        assert scribe.step() == "completed"
        journal_path = coordinator.layout.worker_journal("scribe")
        truncate_tail(journal_path, 7)  # tear the final record
        status = _drain(coordinator, _worker(coordinator, "healthy", clock), clock)
        assert status.complete
        _assert_bytes_identical(reference, coordinator.directory)

    def test_stale_and_duplicate_leases(self, tmp_path, reference):
        """A zombie's live lease blocks the job until it expires (then the
        job requeues); a forged lease on a completed job is reaped."""
        clock = ManualClock()
        coordinator = _coordinator(tmp_path, clock)
        coordinator.publish()
        forge_lease(coordinator.leases, JOB_IDS[0], worker_id="zombie", expires_in=TTL)
        worker = _worker(coordinator, "healthy", clock)
        assert worker.step() == "completed"  # claims the unblocked job
        assert worker.step() == "idle"  # the forged lease blocks the other
        clock.advance(TTL + 1)
        status = _drain(coordinator, worker, clock)
        assert status.complete
        # plant a leftover lease on an already-completed job: reaped, not requeued
        forge_lease(coordinator.leases, JOB_IDS[1], worker_id="zombie", expires_in=-1.0)
        coordinator.step()
        assert coordinator.leases.read(JOB_IDS[1]) is None
        _assert_bytes_identical(reference, coordinator.directory)

    def test_clock_skew(self, tmp_path, reference):
        """A worker whose clock runs behind writes already-expired leases;
        the coordinator requeues its job with no wall-clock wait at all."""
        clock = ManualClock()
        coordinator = _coordinator(tmp_path, clock)
        coordinator.publish()
        drifted = _worker(
            coordinator,
            "drifted",
            clock,
            now_fn=SkewedClock(-2 * TTL, base=clock),
            chaos=ChaosPolicy(faults=(FaultSpec("evaluation_put", "kill", after=0),)),
        )
        with pytest.raises(ChaosKill):
            drifted.step()
        # no clock.advance: the skewed lease was born expired
        status = _drain(coordinator, _worker(coordinator, "healthy", clock), clock)
        assert status.complete
        _assert_bytes_identical(reference, coordinator.directory)

    def test_serial_fallback_matches_reference(self, tmp_path, reference):
        """The no-workers degradation path is the same byte-identical run."""
        clock = ManualClock()
        coordinator = _coordinator(tmp_path, clock)
        summary = coordinator.run(poll_interval=0.0)
        assert summary.ok and summary.serial_fallback
        _assert_bytes_identical(reference, coordinator.directory)
