"""Tests for the bit-accurate fixed-point circuit simulator."""

import numpy as np
import pytest

from repro.bespoke import BespokeConfig, FixedPointSimulator, verify_circuit
from repro.nn import MLP, build_mlp
from repro.pruning import prune_by_magnitude
from repro.quantization import attach_quantizers


class TestConstructionAndInputs:
    def test_requires_dense_layers(self):
        with pytest.raises(ValueError):
            FixedPointSimulator(MLP([]))

    def test_layer_views_match_model(self, seeds_model):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=6))
        assert len(simulator.layers) == 2
        assert simulator.layers[0].n_inputs == 7
        assert simulator.layers[0].n_neurons == 4
        assert simulator.layers[0].relu is True
        assert simulator.layers[1].relu is False

    def test_quantize_inputs_levels(self, seeds_model):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4))
        levels = simulator.quantize_inputs(np.array([[0.0, 0.5, 1.0, 0.2, 0.8, 0.4, 0.6]]))
        assert levels.dtype.kind == "i"
        assert levels.min() >= 0
        assert levels.max() <= 15

    def test_out_of_range_inputs_rejected(self, seeds_model):
        simulator = FixedPointSimulator(seeds_model)
        with pytest.raises(ValueError):
            simulator.quantize_inputs(np.array([[2.0] * 7]))

    def test_wrong_feature_count_rejected(self, seeds_model):
        simulator = FixedPointSimulator(seeds_model)
        with pytest.raises(ValueError):
            simulator.forward_integer(np.zeros((1, 5)))


class TestFunctionalEquivalence:
    def test_agreement_with_float_model_at_8_bits(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4, weight_bits=8))
        agreement = simulator.agreement_with_model(seeds_model, seeds_data.test.features)
        assert agreement >= 0.95

    def test_exact_agreement_with_quantized_model(self, seeds_model, seeds_data):
        quantized = seeds_model.clone()
        attach_quantizers(quantized, 4)
        simulator = FixedPointSimulator(quantized, BespokeConfig(input_bits=4, weight_bits=4))
        agreement = simulator.agreement_with_model(quantized, seeds_data.test.features)
        assert agreement >= 0.98

    def test_simulated_accuracy_close_to_model_accuracy(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=8))
        circuit_accuracy = simulator.evaluate_accuracy(
            seeds_data.test.features, seeds_data.test.labels
        )
        model_accuracy = seeds_model.evaluate_accuracy(
            seeds_data.test.features, seeds_data.test.labels
        )
        assert abs(circuit_accuracy - model_accuracy) <= 0.05

    def test_pruned_model_simulation(self, seeds_model, seeds_data):
        pruned = seeds_model.clone()
        prune_by_magnitude(pruned, 0.4)
        simulator = FixedPointSimulator(pruned, BespokeConfig(weight_bits=8))
        agreement = simulator.agreement_with_model(pruned, seeds_data.test.features)
        assert agreement >= 0.9

    def test_predict_scores_scaled_floats(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=8))
        scores = simulator.predict_scores(seeds_data.test.features[:5])
        assert scores.shape == (5, 3)
        assert scores.dtype == np.float64
        # The argmax of the scaled scores matches the integer argmax.
        np.testing.assert_array_equal(
            np.argmax(scores, axis=1), simulator.predict(seeds_data.test.features[:5])
        )

    def test_verify_circuit_verdict(self, seeds_model, seeds_data):
        quantized = seeds_model.clone()
        attach_quantizers(quantized, 5)
        verdict = verify_circuit(
            quantized,
            seeds_data.test.features,
            BespokeConfig(input_bits=4, weight_bits=5),
        )
        assert verdict["passed"] is True
        assert verdict["n_samples"] == seeds_data.test.n_samples
        assert 0.0 <= verdict["agreement"] <= 1.0

    def test_untrained_random_model_still_consistent(self, seeds_data):
        model = build_mlp(7, (5,), 3, seed=3)
        simulator = FixedPointSimulator(model, BespokeConfig(weight_bits=8))
        agreement = simulator.agreement_with_model(model, seeds_data.test.features)
        assert agreement >= 0.9


class TestDatapathTrace:
    def test_datapath_report_fields(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=6))
        report = simulator.datapath_report(seeds_data.test.features)
        assert len(report["accumulator_bits"]) == 2
        assert report["configured_weight_bits"] == [6, 6]
        assert report["input_bits"] == 4
        assert report["n_samples"] == seeds_data.test.n_samples

    def test_accumulator_bits_positive_and_bounded(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=8))
        report = simulator.datapath_report(seeds_data.test.features)
        for bits in report["accumulator_bits"]:
            assert 1 <= bits <= 32

    def test_relu_clamps_hidden_accumulators(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=8))
        scores = simulator.forward_integer(seeds_data.test.features)
        # Hidden ReLU guarantees the last layer's inputs were non-negative, so
        # final scores are bounded by sum of |weights| * max activation; just
        # check they are finite integers.
        assert scores.dtype.kind == "i"


class TestBatchedSimulation:
    def test_simulate_batch_matches_per_sample_golden_model(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4, weight_bits=6))
        features = seeds_data.test.features[:32]
        batch_scores = simulator.simulate_batch(features)
        for row, sample in enumerate(features):
            assert list(batch_scores[row]) == simulator.simulate_sample(sample)

    def test_batch_matches_golden_model_after_minimization(self, seeds_model, seeds_data):
        minimized = seeds_model.clone()
        prune_by_magnitude(minimized, 0.4)
        attach_quantizers(minimized, 3)
        simulator = FixedPointSimulator(minimized, BespokeConfig(input_bits=4, weight_bits=3))
        features = seeds_data.test.features[:16]
        batch_scores = simulator.simulate_batch(features)
        for row, sample in enumerate(features):
            assert list(batch_scores[row]) == simulator.simulate_sample(sample)

    def test_forward_integer_delegates_to_batch_path(self, seeds_model, seeds_data):
        simulator = FixedPointSimulator(seeds_model, BespokeConfig(weight_bits=8))
        features = seeds_data.test.features[:8]
        np.testing.assert_array_equal(
            simulator.forward_integer(features), simulator.simulate_batch(features)
        )

    def test_simulate_sample_rejects_wrong_feature_count(self, seeds_model):
        simulator = FixedPointSimulator(seeds_model)
        with pytest.raises(ValueError):
            simulator.simulate_sample(np.zeros(5))
