"""Execute every Python code block in README.md and docs/*.md.

Documentation can never silently rot: each ```python fenced block is
extracted and executed here (and in CI). Blocks within one document share a
namespace, in order, so docs can build narratives (imports and variables
from earlier blocks stay available). Blocks that must not execute (e.g.
deliberately partial fragments) can be marked with an HTML comment
``<!-- docs-test: skip -->`` on one of the two lines above the fence.
Non-Python fences (bash, yaml, text, ...) are ignored.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every documentation file whose Python blocks are executable.
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

SKIP_MARKER = "docs-test: skip"


def extract_python_blocks(text: str) -> List[Tuple[int, str]]:
    """``(first line number, source)`` of each executable ```python block."""
    blocks: List[Tuple[int, str]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped.startswith("```python"):
            skip = any(
                SKIP_MARKER in lines[j]
                for j in range(max(0, index - 2), index)
            )
            start = index + 1
            end = start
            while end < len(lines) and not lines[end].strip().startswith("```"):
                end += 1
            if not skip:
                blocks.append((start + 1, "\n".join(lines[start:end])))
            index = end + 1
        else:
            index += 1
    return blocks


def test_every_doc_is_covered():
    """The parametrized list below really covers README + all of docs/."""
    assert REPO_ROOT / "README.md" in DOC_FILES
    assert any(path.name == "campaigns.md" for path in DOC_FILES)
    assert any(path.name == "architecture.md" for path in DOC_FILES)
    assert any(path.name == "api.md" for path in DOC_FILES)


def test_extractor_honors_skip_marker():
    text = "\n".join(
        [
            "```python",
            "executed = True",
            "```",
            "<!-- docs-test: skip -->",
            "```python",
            "raise RuntimeError('must not run')",
            "```",
            "```bash",
            "not python at all",
            "```",
        ]
    )
    blocks = extract_python_blocks(text)
    assert len(blocks) == 1
    assert blocks[0][1] == "executed = True"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documentation_code_blocks_execute(path, tmp_path, monkeypatch):
    """Run each document's Python blocks in order, in a scratch directory."""
    blocks = extract_python_blocks(path.read_text())
    if not blocks:
        return  # nothing executable in this document — trivially healthy
    monkeypatch.chdir(tmp_path)  # file outputs land in the scratch dir
    namespace: dict = {"__name__": f"docs_{path.stem}"}
    for line, source in blocks:
        code = compile(source, f"{path.name}:line-{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as error:  # pragma: no cover - failure reporting only
            rel = path.relative_to(REPO_ROOT)
            raise AssertionError(
                f"Documentation block at {rel}:{line} failed: "
                f"{type(error).__name__}: {error}"
            ) from error
    # Restore cwd promptly on POSIX shells that dislike deleted cwds.
    monkeypatch.chdir(REPO_ROOT)
    assert os.getcwd() == str(REPO_ROOT)
