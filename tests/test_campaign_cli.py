"""The ``repro campaign`` CLI verbs, including the SIGKILL golden test."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

_SPEC = {
    "name": "cli-test",
    "datasets": ["seeds", "redwine"],
    "pipeline": {"train_epochs": 3, "n_samples": 120, "finetune_epochs": 1},
    "searches": [{"algorithm": "random", "n_evaluations": 3}],
}


def _write_spec(tmp_path, spec=None, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(spec if spec is not None else _SPEC))
    return path


class TestCampaignVerbs:
    def test_run_status_report_resume(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path)
        out = str(tmp_path / "camp")

        assert main(["campaign", "run", "--spec", str(spec_path), "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "2/2 jobs completed" in captured

        assert main(["campaign", "status", "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "2/2 completed" in captured
        assert "seeds-random-s0" in captured

        assert main(["campaign", "report", "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "report artefacts written" in captured
        assert (Path(out) / "report" / "summary.md").exists()

        # Resuming a finished campaign is a no-op success.
        assert main(["campaign", "resume", "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "0 remaining" in captured

    def test_status_and_resume_without_campaign(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert main(["campaign", "status", "--out", missing]) == 1
        assert main(["campaign", "resume", "--out", missing]) == 1
        assert main(["campaign", "report", "--out", missing]) == 1

    def test_max_jobs_leaves_pending_work(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path)
        out = str(tmp_path / "camp")
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", out, "--max-jobs", "1"]
        ) == 0
        assert "1 remaining" in capsys.readouterr().out
        assert main(["campaign", "resume", "--out", out]) == 0
        assert "0 remaining" in capsys.readouterr().out

    def test_missing_spec_file_reports_cleanly(self, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--spec", str(tmp_path / "absent.yaml"),
             "--out", str(tmp_path / "camp")]
        ) == 1
        assert "not found" in capsys.readouterr().out

    def test_invalid_spec_reports_cleanly(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path, {"name": "bad", "datasets": ["seeds"]})
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(tmp_path / "c")]
        ) == 1
        assert "invalid campaign spec" in capsys.readouterr().out

    def test_edited_spec_against_existing_dir_reports_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "camp")
        assert main(
            ["campaign", "run", "--spec", str(_write_spec(tmp_path)), "--out", out]
        ) == 0
        capsys.readouterr()
        edited = dict(_SPEC, seeds=[1])
        edited_path = _write_spec(tmp_path, edited, name="edited.json")
        assert main(["campaign", "run", "--spec", str(edited_path), "--out", out]) == 1
        assert "fingerprint mismatch" in capsys.readouterr().out

    def test_bad_shard_reports_cleanly(self, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--spec", str(_write_spec(tmp_path)),
             "--out", str(tmp_path / "camp"), "--shard", "2/2"]
        ) == 1
        assert "Shard" in capsys.readouterr().out

    def test_failed_job_exits_nonzero(self, tmp_path, capsys):
        spec = dict(_SPEC)
        spec["datasets"] = ["seeds"]
        spec["searches"] = [{"algorithm": "ga", "population_size": 2, "n_generations": 1}]
        spec_path = _write_spec(tmp_path, spec)
        out = str(tmp_path / "camp")
        assert main(["campaign", "run", "--spec", str(spec_path), "--out", out]) == 1
        assert "failed" in capsys.readouterr().out


class TestKillResumeGolden:
    """ISSUE-4 acceptance: SIGKILL a campaign subprocess, resume, compare bytes."""

    # The second and later jobs are big enough (~seconds) that the kill lands
    # while the campaign is still running; the first job is small enough that
    # its completion marker appears quickly. The GA search runs with Monte-
    # Carlo fault injection enabled, so the kill->resume byte-identity also
    # covers robust_accuracy/accuracy_std round-tripping through the
    # persistent evaluation cache.
    KILL_SPEC = {
        "name": "kill-golden",
        "datasets": ["seeds", "redwine"],
        "pipeline": {"train_epochs": 12, "n_samples": 500, "finetune_epochs": 2},
        "searches": [
            {"algorithm": "random", "name": "warmup", "n_evaluations": 2},
            {"algorithm": "ga", "population_size": 8, "n_generations": 3,
             "finetune_epochs": 2, "fault_rate": 0.05, "n_fault_trials": 3},
        ],
    }

    def _run_subprocess(self, spec_path, out_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign", "run",
             "--spec", str(spec_path), "--out", str(out_dir)],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        spec_path = _write_spec(tmp_path, self.KILL_SPEC)

        # Reference: uninterrupted run, in-process.
        ref_dir = tmp_path / "reference"
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(ref_dir)]
        ) == 0

        # Victim: subprocess killed as soon as the first job completes.
        victim_dir = tmp_path / "victim"
        process = self._run_subprocess(spec_path, victim_dir)
        first_marker = victim_dir / "jobs" / "seeds-warmup-s0" / "result.json"
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                if first_marker.exists() or process.poll() is not None:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("campaign subprocess made no progress within 120s")
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)

        # Resume in-process and compare every job's front byte for byte.
        assert main(["campaign", "resume", "--out", str(victim_dir)]) == 0
        for job_dir in sorted((ref_dir / "jobs").iterdir()):
            reference = (job_dir / "front.json").read_bytes()
            resumed = (victim_dir / "jobs" / job_dir.name / "front.json").read_bytes()
            assert reference == resumed, f"front diverged for {job_dir.name}"

        # The report over the resumed campaign covers both datasets.
        assert main(["campaign", "report", "--out", str(victim_dir)]) == 0
        summary = json.loads(
            (victim_dir / "report" / "summary.json").read_text()
        )
        assert set(summary["datasets"]) == {"seeds", "redwine"}
        assert summary["n_jobs_completed"] == 4

        # The robustness-enabled GA jobs persisted their fault-injection
        # measurements into the resumed fronts and the report artifacts.
        for dataset in ("seeds", "redwine"):
            ga_front = json.loads(
                (victim_dir / "jobs" / f"{dataset}-ga-s0" / "front.json").read_text()
            )
            assert ga_front["front"], "robust GA job produced an empty front"
            for point in ga_front["front"]:
                assert 0.0 <= point["robust_accuracy"] <= 1.0
                assert point["accuracy_std"] >= 0.0
            combined = summary["datasets"][dataset]["combined_front"]
            front_csv = (victim_dir / "report" / f"front_{dataset}.csv").read_text()
            # Robust columns appear exactly when a robust point made the
            # combined (union) front.
            assert ("robust_accuracy" in front_csv.splitlines()[0]) == any(
                "robust_accuracy" in p for p in combined
            )
            # The warmup (robustness-off) job's points stay clean.
            warmup_front = json.loads(
                (victim_dir / "jobs" / f"{dataset}-warmup-s0" / "front.json").read_text()
            )
            assert all("robust_accuracy" not in p for p in warmup_front["front"])
