"""Tests for the CSD encoding, including hypothesis property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.csd import (
    binary_adder_stages,
    binary_nonzero_digits,
    coefficient_bit_length,
    csd_adder_stages,
    csd_nonzero_digits,
    from_csd,
    is_power_of_two,
    to_csd,
)


class TestKnownValues:
    @pytest.mark.parametrize(
        "value, expected_nonzero",
        [
            (0, 0),
            (1, 1),
            (2, 1),
            (3, 2),       # 4 - 1
            (7, 2),       # 8 - 1
            (15, 2),      # 16 - 1
            (5, 2),
            (170, 4),     # 10101010 alternating pattern (CSD cannot improve isolated 1s)
            (-7, 2),
            (127, 2),     # 128 - 1
            (255, 2),     # 256 - 1
        ],
    )
    def test_csd_nonzero_digit_counts(self, value, expected_nonzero):
        assert csd_nonzero_digits(value) == expected_nonzero

    @pytest.mark.parametrize("value", [0, 1, -1, 2, 3, 7, 12, 100, 255, -255, 1023])
    def test_roundtrip(self, value):
        assert from_csd(to_csd(value)) == value

    def test_adder_stages_for_powers_of_two(self):
        for exponent in range(8):
            assert csd_adder_stages(1 << exponent) == 0

    def test_adder_stages_zero(self):
        assert csd_adder_stages(0) == 0

    def test_adder_stages_examples(self):
        assert csd_adder_stages(3) == 1
        assert csd_adder_stages(7) == 1
        assert csd_adder_stages(11) == 2   # 8 + 4 - 1 or 8 + 2 + 1
        assert binary_adder_stages(7) == 2  # 4 + 2 + 1

    def test_binary_nonzero_digits(self):
        assert binary_nonzero_digits(7) == 3
        assert binary_nonzero_digits(-7) == 3
        assert binary_nonzero_digits(8) == 1

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert is_power_of_two(-4)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)

    def test_coefficient_bit_length(self):
        assert coefficient_bit_length(0) == 0
        assert coefficient_bit_length(1) == 1
        assert coefficient_bit_length(-8) == 4
        assert coefficient_bit_length(255) == 8

    def test_invalid_digit_rejected_by_from_csd(self):
        with pytest.raises(ValueError):
            from_csd([2])


class TestCSDProperties:
    @given(st.integers(min_value=-(2**16), max_value=2**16))
    def test_roundtrip_property(self, value):
        assert from_csd(to_csd(value)) == value

    @given(st.integers(min_value=-(2**16), max_value=2**16))
    def test_digits_in_alphabet(self, value):
        assert set(to_csd(value)).issubset({-1, 0, 1})

    @given(st.integers(min_value=-(2**16), max_value=2**16))
    def test_no_adjacent_nonzero_digits(self, value):
        digits = to_csd(value)
        for first, second in zip(digits, digits[1:]):
            assert not (first != 0 and second != 0)

    @given(st.integers(min_value=-(2**16), max_value=2**16))
    def test_csd_never_worse_than_binary(self, value):
        assert csd_nonzero_digits(value) <= binary_nonzero_digits(value) + (
            1 if value < 0 else 0
        )

    @given(st.integers(min_value=1, max_value=2**16))
    def test_csd_at_most_half_plus_one_digits(self, value):
        # A classic CSD bound: at most ceil((bit_length + 1) / 2) non-zero digits.
        bound = (value.bit_length() + 2) // 2
        assert csd_nonzero_digits(value) <= bound

    @given(st.integers(min_value=0, max_value=2**16))
    def test_stage_counts_non_negative(self, value):
        assert csd_adder_stages(value) >= 0
        assert binary_adder_stages(value) >= 0
