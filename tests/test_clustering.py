"""Tests for repro.clustering: 1-D k-means, weight sharing, and the sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering import (
    cluster_and_finetune,
    cluster_and_replace,
    cluster_layer_weights,
    cluster_model_weights,
    clustering_sweep,
    distinct_products,
    kmeans_1d,
    reproject_clusters,
)
from repro.nn import build_mlp
from repro.pruning import prune_by_magnitude


class TestKMeans1D:
    def test_well_separated_clusters_found(self):
        values = np.concatenate([np.full(20, -5.0), np.full(20, 0.0), np.full(20, 5.0)])
        result = kmeans_1d(values, 3, seed=0)
        np.testing.assert_allclose(sorted(result.centroids), [-5.0, 0.0, 5.0], atol=1e-9)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_centroids_sorted_and_assignments_consistent(self):
        values = np.random.default_rng(0).normal(size=200)
        result = kmeans_1d(values, 4, seed=0)
        assert np.all(np.diff(result.centroids) >= 0)
        reconstructed = result.centroids[result.assignments]
        assert np.all(np.abs(values - reconstructed) <= np.ptp(values))

    def test_more_clusters_than_distinct_values(self):
        values = np.array([1.0, 1.0, 2.0, 2.0])
        result = kmeans_1d(values, 10, seed=0)
        assert len(result.centroids) == 2

    def test_single_cluster_is_mean(self):
        values = np.array([1.0, 3.0, 5.0])
        result = kmeans_1d(values, 1, seed=0)
        assert result.centroids[0] == pytest.approx(3.0)

    @pytest.mark.parametrize("init", ["kmeans++", "linear", "quantile"])
    def test_all_initializations_work(self, init):
        values = np.random.default_rng(1).normal(size=100)
        result = kmeans_1d(values, 4, seed=0, init=init)
        assert len(result.centroids) == 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), 2, init="random_partition")

    def test_cluster_and_replace_shape_preserved(self):
        values = np.random.default_rng(2).normal(size=(6, 4))
        replaced, result = cluster_and_replace(values, 3, seed=0)
        assert replaced.shape == values.shape
        assert len(np.unique(replaced)) <= 3

    @given(
        st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_kmeans_properties(self, values, n_clusters):
        values = np.array(values)
        result = kmeans_1d(values, n_clusters, seed=0)
        # Inertia never exceeds the variance around the global mean (k=1 solution).
        assert result.inertia <= np.sum((values - values.mean()) ** 2) + 1e-6
        # Centroids lie within the data range.
        assert result.centroids.min() >= values.min() - 1e-9
        assert result.centroids.max() <= values.max() + 1e-9


class TestLayerAndModelClustering:
    def test_per_position_limits_distinct_values_per_row(self):
        model = build_mlp(6, (8,), 4, seed=0)
        layer = model.dense_layers[0]
        cluster_layer_weights(layer, 3, seed=0, per_position=True)
        for row in layer.weights:
            assert len(np.unique(row)) <= 3

    def test_whole_layer_codebook(self):
        model = build_mlp(6, (8,), 4, seed=0)
        layer = model.dense_layers[0]
        cluster_layer_weights(layer, 4, seed=0, per_position=False)
        assert len(np.unique(layer.weights)) <= 4

    def test_zero_weights_stay_zero(self):
        model = build_mlp(6, (8,), 4, seed=0)
        prune_by_magnitude(model, 0.5)
        cluster_model_weights(model, 3, seed=0)
        assert model.sparsity() == pytest.approx(0.5, abs=0.1)

    def test_cluster_model_per_layer_budgets(self):
        model = build_mlp(6, (8,), 4, seed=0)
        cluster_model_weights(model, (2, 5), seed=0)
        first, second = model.dense_layers
        assert max(len(np.unique(row)) for row in first.weights) <= 2
        assert max(len(np.unique(row)) for row in second.weights) <= 5

    def test_wrong_budget_length(self):
        model = build_mlp(6, (8,), 4, seed=0)
        with pytest.raises(ValueError):
            cluster_model_weights(model, (2, 3, 4), seed=0)

    def test_result_counts_products(self):
        model = build_mlp(6, (8,), 4, seed=0)
        result = cluster_model_weights(model, 2, seed=0)
        assert result.total_distinct_products <= (6 + 8) * 2
        assert result.total_connections == model.n_active_connections()
        assert result.sharing_ratio() > 1.0

    def test_distinct_products_decreases_with_clustering(self):
        model = build_mlp(6, (8,), 4, seed=0)
        before = distinct_products(model)
        cluster_model_weights(model, 2, seed=0)
        after = distinct_products(model)
        assert after < before

    def test_invalid_cluster_count(self):
        model = build_mlp(4, (3,), 2, seed=0)
        with pytest.raises(ValueError):
            cluster_layer_weights(model.dense_layers[0], 0)


class TestReprojectAndFinetune:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.datasets import load_dataset, prepare_split, train_val_test_split

        return prepare_split(train_val_test_split(load_dataset("seeds"), seed=0), input_bits=4)

    @pytest.fixture(scope="class")
    def trained(self, data):
        from repro.nn import train_classifier

        model = build_mlp(7, (4,), 3, seed=0)
        train_classifier(
            model, data.train.features, data.train.labels,
            data.validation.features, data.validation.labels, epochs=60, seed=0,
        )
        return model

    def test_reproject_restores_cluster_structure(self, trained):
        model = trained.clone()
        result = cluster_model_weights(model, 2, seed=0)
        # Perturb weights (simulating unconstrained fine-tuning).
        for layer in model.dense_layers:
            layer.weights += np.random.default_rng(0).normal(scale=0.01, size=layer.weights.shape)
        reproject_clusters(model, result)
        for layer in model.dense_layers:
            for row in layer.weights:
                nonzero = row[row != 0.0]
                if nonzero.size:
                    assert len(np.unique(nonzero)) <= 2

    def test_reproject_mismatched_result_rejected(self, trained):
        model = trained.clone()
        result = cluster_model_weights(model.clone(), 2, seed=0)
        result.per_layer.pop()
        with pytest.raises(ValueError):
            reproject_clusters(model, result)

    def test_cluster_and_finetune_keeps_structure_and_accuracy(self, trained, data):
        model = trained.clone()
        baseline_accuracy = trained.evaluate_accuracy(data.test.features, data.test.labels)
        cluster_and_finetune(model, data, 3, epochs=6, seed=0)
        accuracy = model.evaluate_accuracy(data.test.features, data.test.labels)
        for layer in model.dense_layers:
            for row in layer.weights:
                nonzero = row[row != 0.0]
                if nonzero.size:
                    assert len(np.unique(nonzero)) <= 3
        assert accuracy >= baseline_accuracy - 0.2

    def test_clustering_sweep_points(self, trained, data):
        points = clustering_sweep(
            trained, data, cluster_range=(2, 6), finetune_epochs=3, seed=0
        )
        assert [p.parameters["n_clusters"] for p in points] == [2, 6]
        assert all(p.technique == "clustering" for p in points)
        # Fewer clusters -> more sharing -> smaller area.
        assert points[0].area <= points[1].area + 1e-9
        # Baseline untouched.
        assert trained.dense_layers[0].mask is None
