"""Unit tests for repro.nn.network (MLP container and build_mlp)."""

import numpy as np
import pytest

from repro.nn.layers import ActivationLayer, Dense, Dropout
from repro.nn.network import build_mlp


@pytest.fixture
def mlp():
    return build_mlp(6, (5, 4), 3, seed=0)


class TestBuildMLP:
    def test_topology(self, mlp):
        assert mlp.topology() == [6, 5, 4, 3]

    def test_layer_structure(self, mlp):
        kinds = [type(layer).__name__ for layer in mlp.layers]
        assert kinds == [
            "Dense",
            "ActivationLayer",
            "Dense",
            "ActivationLayer",
            "Dense",
        ]

    def test_no_hidden_layers(self):
        model = build_mlp(4, (), 2, seed=0)
        assert model.topology() == [4, 2]
        assert len(model.layers) == 1

    def test_dropout_inserted(self):
        model = build_mlp(4, (3,), 2, dropout=0.5, seed=0)
        assert any(isinstance(layer, Dropout) for layer in model.layers)

    def test_seed_reproducibility(self):
        a = build_mlp(5, (4,), 3, seed=42)
        b = build_mlp(5, (4,), 3, seed=42)
        np.testing.assert_array_equal(a.dense_layers[0].weights, b.dense_layers[0].weights)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            build_mlp(0, (3,), 2)
        with pytest.raises(ValueError):
            build_mlp(3, (0,), 2)
        with pytest.raises(ValueError):
            build_mlp(3, (3,), 0)


class TestForwardPredict:
    def test_forward_shape(self, mlp):
        out = mlp.forward(np.zeros((10, 6)))
        assert out.shape == (10, 3)

    def test_predict_returns_class_indices(self, mlp):
        predictions = mlp.predict(np.random.default_rng(0).normal(size=(20, 6)))
        assert predictions.shape == (20,)
        assert set(np.unique(predictions)).issubset({0, 1, 2})

    def test_predict_scores_matches_forward(self, mlp):
        x = np.random.default_rng(1).normal(size=(4, 6))
        np.testing.assert_array_equal(mlp.predict_scores(x), mlp.forward(x))

    def test_evaluate_accuracy_range(self, mlp):
        x = np.random.default_rng(2).normal(size=(30, 6))
        labels = np.random.default_rng(3).integers(0, 3, size=30)
        value = mlp.evaluate_accuracy(x, labels)
        assert 0.0 <= value <= 1.0

    def test_callable_interface(self, mlp):
        x = np.zeros((2, 6))
        np.testing.assert_array_equal(mlp(x), mlp.forward(x))


class TestParameterAccounting:
    def test_n_parameters(self, mlp):
        expected = (6 * 5 + 5) + (5 * 4 + 4) + (4 * 3 + 3)
        assert mlp.n_parameters() == expected

    def test_n_connections_excludes_bias(self, mlp):
        assert mlp.n_connections() == 6 * 5 + 5 * 4 + 4 * 3

    def test_sparsity_zero_without_masks(self, mlp):
        assert mlp.sparsity() == pytest.approx(0.0)

    def test_sparsity_with_mask(self, mlp):
        layer = mlp.dense_layers[0]
        mask = np.ones_like(layer.weights)
        mask[:, 0] = 0.0
        layer.mask = mask
        expected = layer.weights.shape[0] / mlp.n_connections()
        assert mlp.sparsity() == pytest.approx(expected)

    def test_dense_layers_property(self, mlp):
        assert len(mlp.dense_layers) == 3
        assert all(isinstance(layer, Dense) for layer in mlp.dense_layers)


class TestCloneAndWeights:
    def test_clone_is_independent(self, mlp):
        clone = mlp.clone()
        clone.dense_layers[0].weights[:] = 99.0
        assert not np.array_equal(clone.dense_layers[0].weights, mlp.dense_layers[0].weights)

    def test_clone_preserves_hooks(self, mlp):
        mlp_copy = mlp.clone()
        mlp_copy.dense_layers[0].mask = np.zeros_like(mlp_copy.dense_layers[0].weights)
        second = mlp_copy.clone()
        assert second.dense_layers[0].mask is not None
        assert second.dense_layers[0].mask is not mlp_copy.dense_layers[0].mask

    def test_get_set_weights_roundtrip(self, mlp):
        weights = mlp.get_weights()
        clone = build_mlp(6, (5, 4), 3, seed=99)
        clone.set_weights(weights)
        x = np.random.default_rng(4).normal(size=(5, 6))
        np.testing.assert_allclose(clone.forward(x), mlp.forward(x))

    def test_set_weights_wrong_length(self, mlp):
        with pytest.raises(ValueError):
            mlp.set_weights(mlp.get_weights()[:-1])

    def test_summary_length(self, mlp):
        assert len(mlp.summary()) == len(mlp.layers)


class TestBackward:
    def test_training_roundtrip_reduces_loss(self):
        # A minimal sanity check that forward/backward/update wiring learns.
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.nn.optimizers import Adam

        generator = np.random.default_rng(0)
        x = np.vstack(
            [generator.normal(-1.0, 0.5, size=(40, 4)), generator.normal(1.0, 0.5, size=(40, 4))]
        )
        labels = np.array([0] * 40 + [1] * 40)
        targets = np.zeros((80, 2))
        targets[np.arange(80), labels] = 1.0

        model = build_mlp(4, (6,), 2, seed=0)
        loss = SoftmaxCrossEntropy()
        optimizer = Adam(learning_rate=0.05)
        initial = loss.forward(model.forward(x), targets)
        for _ in range(50):
            scores = model.forward(x, training=True)
            grad = loss.backward(scores, targets)
            model.backward(grad)
            optimizer.update(model.parameters, model.gradients)
        final = loss.forward(model.forward(x), targets)
        assert final < initial * 0.5
