"""Bit-identity tests of the stacked population trainer.

The stacked trainer's contract is that genome ``g`` of a stack evolves
through exactly the float operations the serial fast path would apply to it
alone. These tests train the same populations both ways and assert byte
equality of the resulting weights and the full training histories — for
mixed bit-widths, mixed pruning masks, per-genome seeds, and populations
whose genomes early-stop at different epochs (exercising stack compaction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Dropout
from repro.nn.network import build_mlp
from repro.nn.optimizers import Adam, StackedAdam
from repro.nn.stacked import (
    StackedTrainer,
    finetune_stacked,
    predict_stacked,
    supports_stacking,
)
from repro.nn.trainer import TrainerConfig, finetune
from repro.pruning.magnitude import prune_by_magnitude
from repro.quantization.qat import attach_quantizers


def _problem(rng, n=260, n_features=9, n_classes=4):
    x = rng.normal(size=(n, n_features))
    y = rng.integers(0, n_classes, size=n)
    return x, y


def _population(n_features=9, n_classes=4, specs=None):
    """Heterogeneous population: varying bits, masks and initializations."""
    if specs is None:
        specs = [(2, True, 0), (3, False, 1), (4, True, 2), (8, True, 3), (6, False, 4)]
    models = []
    for bits, do_prune, seed in specs:
        model = build_mlp(n_features, [10], n_classes, seed=seed)
        if do_prune:
            prune_by_magnitude(model, [0.5, 0.3], global_ranking=False)
        attach_quantizers(model, bits)
        models.append(model)
    return models


def _assert_identical(serial_models, stacked_models, serial_hist, stacked_hist):
    for index, (a, b) in enumerate(zip(serial_models, stacked_models)):
        for la, lb in zip(a.dense_layers, b.dense_layers):
            assert la.weights.tobytes() == lb.weights.tobytes(), f"weights {index}"
            assert la.bias.tobytes() == lb.bias.tobytes(), f"bias {index}"
    for index, (ha, hb) in enumerate(zip(serial_hist, stacked_hist)):
        assert ha.as_dict() == hb.as_dict(), f"history {index}"


class TestStackedFinetuneBitIdentity:
    def test_quantized_masked_population(self, rng):
        x, y = _problem(rng)
        xv, yv = _problem(rng, n=70)
        seeds = [11, 12, 13, 14, 15]
        serial = _population()
        serial_hist = [
            finetune(m, x, y, xv, yv, epochs=8, learning_rate=0.003, seed=s)
            for m, s in zip(serial, seeds)
        ]
        stacked = _population()
        assert supports_stacking(stacked)
        stacked_hist = finetune_stacked(
            stacked, x, y, xv, yv, epochs=8, learning_rate=0.003, seeds=seeds
        )
        _assert_identical(serial, stacked, serial_hist, stacked_hist)

    def test_heterogeneous_early_stopping(self, rng):
        """Genomes stop at different epochs -> the stack compacts mid-run."""
        x, y = _problem(rng, n=300)
        xv, yv = _problem(rng, n=80)
        specs = [(b, i % 2 == 0, i) for i, b in enumerate([2, 3, 4, 6, 8, 5, 7, 3])]
        seeds = list(range(100, 108))
        serial = _population(specs=specs)
        serial_hist = [
            finetune(m, x, y, xv, yv, epochs=30, learning_rate=0.01, seed=s)
            for m, s in zip(serial, seeds)
        ]
        stacked = _population(specs=specs)
        stacked_hist = finetune_stacked(
            stacked, x, y, xv, yv, epochs=30, learning_rate=0.01, seeds=seeds
        )
        # The point of this configuration: stopping epochs must differ.
        assert len({h.epochs_run for h in serial_hist}) > 1
        _assert_identical(serial, stacked, serial_hist, stacked_hist)

    def test_no_validation_data(self, rng):
        x, y = _problem(rng)
        seeds = [5, 6, 7, 8, 9]
        serial = _population()
        serial_hist = [
            finetune(m, x, y, epochs=5, learning_rate=0.003, seed=s)
            for m, s in zip(serial, seeds)
        ]
        stacked = _population()
        stacked_hist = finetune_stacked(
            stacked, x, y, epochs=5, learning_rate=0.003, seeds=seeds
        )
        _assert_identical(serial, stacked, serial_hist, stacked_hist)

    def test_unquantized_population(self, rng):
        """Plain float fine-tuning (no quantizers) also stacks bit-identically."""
        x, y = _problem(rng)
        seeds = [1, 2, 3]
        serial = [build_mlp(9, [8], 4, seed=i) for i in range(3)]
        stacked = [build_mlp(9, [8], 4, seed=i) for i in range(3)]
        assert supports_stacking(stacked)
        serial_hist = [
            finetune(m, x, y, epochs=4, learning_rate=0.01, seed=s)
            for m, s in zip(serial, seeds)
        ]
        stacked_hist = finetune_stacked(
            stacked, x, y, epochs=4, learning_rate=0.01, seeds=seeds
        )
        _assert_identical(serial, stacked, serial_hist, stacked_hist)


class TestStackedPredictions:
    def test_predict_stacked_matches_serial(self, rng):
        x, y = _problem(rng)
        models = _population()
        seeds = [21, 22, 23, 24, 25]
        finetune_stacked(models, x, y, epochs=3, seeds=seeds)
        predictions = predict_stacked(models, x)
        assert predictions.shape == (len(models), x.shape[0])
        for index, model in enumerate(models):
            assert (predictions[index] == model.predict(x)).all()

    def test_predict_stacked_rejects_empty(self):
        with pytest.raises(ValueError):
            predict_stacked([], np.zeros((3, 4)))


class TestSupportsStacking:
    def test_rejects_empty_and_mismatched(self):
        assert not supports_stacking([])
        a = build_mlp(6, [8], 3, seed=0)
        b = build_mlp(6, [9], 3, seed=0)
        assert not supports_stacking([a, b])

    def test_rejects_dropout(self):
        model = build_mlp(6, [8], 3, dropout=0.2, seed=0)
        assert not supports_stacking([model])
        assert isinstance(model.layers[2], Dropout)

    def test_rejects_mixed_quantizer_patterns(self):
        a = build_mlp(6, [8], 3, seed=0)
        attach_quantizers(a, 4)
        b = build_mlp(6, [8], 3, seed=1)
        assert not supports_stacking([a, b])

    def test_rejects_frozen_scales(self):
        a = build_mlp(6, [8], 3, seed=0)
        quantizers = attach_quantizers(a, 4)
        quantizers[0].calibrate(a.dense_layers[0].weights)
        assert not supports_stacking([a])

    def test_constructor_raises_for_unstackable(self):
        a = build_mlp(6, [8], 3, seed=0)
        b = build_mlp(6, [9], 3, seed=0)
        with pytest.raises(ValueError):
            StackedTrainer([a, b], learning_rate=0.01)


class TestStackedAdam:
    def test_matches_per_model_adam(self, rng):
        """Each row of the stacked update == an independent fused Adam."""
        n_models, size = 4, 23
        stacked_params = rng.normal(size=(n_models, size))
        serial_params = [stacked_params[i].copy() for i in range(n_models)]
        rates = [0.01, 0.003, 0.02, 0.001]
        stacked = StackedAdam(rates)
        serials = [Adam(learning_rate=rate) for rate in rates]
        for _ in range(20):
            grads = rng.normal(size=(n_models, size))
            stacked.update(stacked_params, grads)
            for index, adam in enumerate(serials):
                adam.update([serial_params[index]], [grads[index].copy()])
        for index in range(n_models):
            assert stacked_params[index].tobytes() == serial_params[index].tobytes()

    def test_compact_preserves_survivor_rows(self, rng):
        params = rng.normal(size=(3, 7))
        reference = params[1].copy().reshape(1, -1)
        stacked = StackedAdam([0.01, 0.01, 0.01])
        lone = StackedAdam([0.01])
        grads = rng.normal(size=(3, 7))
        stacked.update(params, grads)
        lone.update(reference, grads[1].copy().reshape(1, -1))
        keep = np.array([1], dtype=np.intp)
        params = params[keep]
        stacked.compact(keep)
        for _ in range(5):
            grad = rng.normal(size=(1, 7))
            stacked.update(params, grad)
            lone.update(reference, grad.copy())
        assert params.tobytes() == reference.tobytes()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            StackedAdam([])
        with pytest.raises(ValueError):
            StackedAdam([0.0])
        optimizer = StackedAdam([0.01])
        with pytest.raises(ValueError):
            optimizer.update(np.zeros((1, 3)), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            optimizer.update(np.zeros((2, 3)), np.zeros((2, 3)))


class TestTrainerConfigInteractions:
    def test_monitor_val_loss(self, rng):
        """The val_loss monitor drives identical early stopping either way."""
        x, y = _problem(rng)
        xv, yv = _problem(rng, n=60)
        config = TrainerConfig(
            epochs=6, batch_size=32, early_stopping_patience=3, monitor="val_loss"
        )
        from repro.nn.trainer import Trainer

        seeds = [41, 42, 43, 44, 45]
        serial = _population()
        serial_hist = []
        for model, seed in zip(serial, seeds):
            trainer = Trainer(
                model,
                optimizer=Adam(learning_rate=0.003),
                config=config,
                seed=seed,
            )
            serial_hist.append(trainer.fit(x, y, xv, yv))
        stacked = _population()
        trainer = StackedTrainer(stacked, 0.003, config=config, seeds=seeds)
        stacked_hist = trainer.fit(x, y, xv, yv)
        _assert_identical(serial, stacked, serial_hist, stacked_hist)
