"""Integration tests for genome evaluation and the hardware-aware GA."""

import numpy as np
import pytest

from repro.core.pareto import pareto_front
from repro.search import (
    CachedEvaluator,
    EvaluationSettings,
    GAConfig,
    Genome,
    HardwareAwareGA,
    apply_genome,
    evaluate_genome,
    grid_search,
    objectives_of,
    random_search,
    run_combined_search,
)


@pytest.fixture(scope="module")
def prepared(prepared_pipeline):
    return prepared_pipeline.prepare()


def genome(bits=4, sparsity=0.0, clusters=0, n_layers=2):
    return Genome(
        weight_bits=(bits,) * n_layers,
        sparsity=(sparsity,) * n_layers,
        clusters=(clusters,) * n_layers,
    )


class TestGenomeEvaluation:
    def test_apply_genome_leaves_baseline_untouched(self, prepared):
        before = prepared.baseline_model.dense_layers[0].weights.copy()
        apply_genome(genome(bits=3, sparsity=0.3, clusters=2), prepared,
                     EvaluationSettings(finetune_epochs=2), seed=0)
        np.testing.assert_array_equal(
            prepared.baseline_model.dense_layers[0].weights, before
        )
        assert prepared.baseline_model.dense_layers[0].mask is None

    def test_apply_genome_respects_all_three_techniques(self, prepared):
        model = apply_genome(
            genome(bits=3, sparsity=0.4, clusters=2), prepared,
            EvaluationSettings(finetune_epochs=2), seed=0,
        )
        # pruning applied
        assert model.sparsity() >= 0.25
        # quantizers attached
        assert all(layer.weight_quantizer is not None for layer in model.dense_layers)
        # clustering applied: at most 2 distinct non-zero values per input row
        for layer in model.dense_layers:
            for row in layer.weights:
                nonzero = row[row != 0.0]
                if nonzero.size:
                    assert len(np.unique(nonzero)) <= 2

    def test_genome_layer_mismatch_rejected(self, prepared):
        with pytest.raises(ValueError):
            apply_genome(genome(n_layers=3), prepared)

    def test_evaluate_genome_returns_combined_point(self, prepared):
        point = evaluate_genome(
            genome(bits=4, sparsity=0.2), prepared,
            EvaluationSettings(finetune_epochs=2), seed=0,
        )
        assert point.technique == "combined"
        assert point.area > 0
        assert point.parameters["weight_bits"] == [4, 4]

    def test_baseline_genome_close_to_baseline_point(self, prepared):
        point = evaluate_genome(
            genome(bits=8, sparsity=0.0, clusters=0), prepared,
            EvaluationSettings(finetune_epochs=0),
        )
        assert point.area == pytest.approx(prepared.baseline_point.area, rel=0.05)

    def test_aggressive_genome_much_smaller(self, prepared):
        aggressive = evaluate_genome(
            genome(bits=2, sparsity=0.5, clusters=2), prepared,
            EvaluationSettings(finetune_epochs=2), seed=0,
        )
        assert aggressive.area < prepared.baseline_point.area * 0.5

    def test_objectives_of(self, prepared):
        baseline = prepared.baseline_point
        loss, area = objectives_of(baseline, baseline)
        assert loss == pytest.approx(0.0)
        assert area == pytest.approx(1.0)

    def test_cached_evaluator_memoizes(self, prepared):
        evaluator = CachedEvaluator(prepared, EvaluationSettings(finetune_epochs=1), seed=0)
        g = genome(bits=4)
        first = evaluator(g)
        second = evaluator(g)
        assert first is second
        assert evaluator.n_evaluations == 1
        assert evaluator.cache_size == 1
        assert evaluator.all_points() == [first]


class TestGAConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 2},
            {"n_generations": 0},
            {"mutation_rate": 1.5},
            {"crossover_rate": -0.1},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)


class TestHardwareAwareGA:
    @pytest.fixture(scope="class")
    def ga_result(self, prepared):
        config = GAConfig(
            population_size=6, n_generations=3, finetune_epochs=2, seed=0,
            bit_choices=(2, 4, 8), sparsity_choices=(0.0, 0.3, 0.6), cluster_choices=(0, 2),
        )
        return HardwareAwareGA(prepared, config=config).run()

    def test_front_is_non_dominated(self, ga_result):
        front = ga_result.front
        assert front == pareto_front(front)
        assert len(front) >= 1

    def test_all_points_recorded(self, ga_result):
        assert len(ga_result.all_points) == ga_result.n_evaluations
        assert ga_result.n_evaluations >= 6

    def test_generation_statistics(self, ga_result):
        assert len(ga_result.generations) == 3
        for entry in ga_result.generations:
            assert entry["front_size"] >= 1
            assert entry["best_area_gain"] >= 1.0

    def test_combined_front_reaches_small_areas(self, ga_result, prepared):
        best_gain = max(prepared.baseline_point.area / p.area for p in ga_result.front)
        assert best_gain > 2.0

    def test_best_within_loss_budget(self, ga_result, prepared):
        best = ga_result.best_area_within_loss(prepared.baseline_point, max_loss=0.5)
        assert best is not None
        none_budget = ga_result.best_area_within_loss(prepared.baseline_point, max_loss=-1.0)
        assert none_budget is None

    def test_run_combined_search_wrapper(self, prepared):
        result = run_combined_search(
            prepared,
            GAConfig(population_size=4, n_generations=1, finetune_epochs=1, seed=1),
        )
        assert result.front


class TestExhaustiveBaselines:
    def test_random_search_respects_budget(self, prepared):
        points = random_search(
            prepared, n_evaluations=5,
            settings=EvaluationSettings(finetune_epochs=1), seed=0,
        )
        assert len(points) == 5

    def test_random_search_invalid_budget(self, prepared):
        with pytest.raises(ValueError):
            random_search(prepared, n_evaluations=0)

    def test_grid_search_covers_grid(self, prepared):
        points = grid_search(
            prepared,
            bit_choices=(4, 8), sparsity_choices=(0.0, 0.4), cluster_choices=(0,),
            settings=EvaluationSettings(finetune_epochs=1), seed=0,
        )
        assert len(points) == 4
        assert all(p.technique == "combined" for p in points)


class TestRobustnessAwareGA:
    """Fault tolerance as a third NSGA-II objective (PR-5 tentpole wiring)."""

    @pytest.fixture(scope="class")
    def robust_result(self, prepared):
        config = GAConfig(
            population_size=6, n_generations=2, finetune_epochs=2, seed=0,
            fault_rate=0.1, n_fault_trials=4, fault_model="short",
            bit_choices=(2, 4, 8), sparsity_choices=(0.0, 0.3, 0.6), cluster_choices=(0, 2),
        )
        return HardwareAwareGA(prepared, config=config).run()

    def test_every_point_carries_robustness(self, robust_result):
        for point in robust_result.front + robust_result.all_points:
            assert point.robust_accuracy is not None
            assert point.accuracy_std is not None
            assert 0.0 <= point.robust_accuracy <= 1.0

    def test_front_is_robust_nondominated(self, robust_result):
        assert robust_result.front == pareto_front(robust_result.front, robust=True)

    def test_deterministic_given_seed(self, prepared, robust_result):
        config = GAConfig(
            population_size=6, n_generations=2, finetune_epochs=2, seed=0,
            fault_rate=0.1, n_fault_trials=4, fault_model="short",
            bit_choices=(2, 4, 8), sparsity_choices=(0.0, 0.3, 0.6), cluster_choices=(0, 2),
        )
        repeat = HardwareAwareGA(prepared, config=config).run()
        assert [
            (p.accuracy, p.area, p.robust_accuracy, p.accuracy_std)
            for p in repeat.front
        ] == [
            (p.accuracy, p.area, p.robust_accuracy, p.accuracy_std)
            for p in robust_result.front
        ]

    def test_ga_inherits_pipeline_fault_knobs(self, prepared):
        from dataclasses import replace

        from repro.search import evaluation_settings_for

        pipeline_config = replace(
            prepared.config, fault_rate=0.2, n_fault_trials=3, fault_model="level_shift"
        )
        inherited = evaluation_settings_for(GAConfig(finetune_epochs=2), pipeline_config)
        assert inherited.fault_rate == 0.2
        assert inherited.n_fault_trials == 3
        assert inherited.fault_model == "level_shift"
        assert inherited.robustness_enabled
        # Explicit GA knobs beat the pipeline's.
        overridden = evaluation_settings_for(
            GAConfig(finetune_epochs=2, fault_rate=0.05, n_fault_trials=0),
            pipeline_config,
        )
        assert overridden.fault_rate == 0.05
        assert overridden.n_fault_trials == 0
        assert not overridden.robustness_enabled

    @pytest.mark.parametrize(
        "kwargs", [{"fault_rate": 1.5}, {"fault_rate": -0.1}, {"n_fault_trials": -1}]
    )
    def test_invalid_fault_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)
