"""Unit tests for repro.bespoke.layer_circuit: per-layer hardware generation."""

import numpy as np
import pytest

from repro.bespoke.layer_circuit import (
    LayerCircuitSpec,
    build_layer_circuit,
    distinct_products_per_input,
    estimate_layer_latency_depth,
)
from repro.hardware.technology import egt_library

TECH = egt_library()


def make_spec(weights, biases=None, **kwargs):
    weights = np.asarray(weights, dtype=np.int64)
    if biases is None:
        biases = np.zeros(weights.shape[1], dtype=np.int64)
    defaults = dict(input_bits=4, weight_bits=8, relu=True, share_products=True)
    defaults.update(kwargs)
    return LayerCircuitSpec(weights=weights, biases=np.asarray(biases, dtype=np.int64), **defaults)


class TestSpecValidation:
    def test_float_weights_rejected(self):
        with pytest.raises(TypeError):
            LayerCircuitSpec(
                weights=np.ones((2, 2)), biases=np.zeros(2, dtype=np.int64),
                input_bits=4, weight_bits=8,
            )

    def test_bias_shape_checked(self):
        with pytest.raises(ValueError):
            make_spec([[1, 2], [3, 4]], biases=[1, 2, 3])

    def test_bits_positive(self):
        with pytest.raises(ValueError):
            make_spec([[1]], input_bits=0)

    def test_dimensions_exposed(self):
        spec = make_spec([[1, 2, 3], [4, 5, 6]])
        assert spec.n_inputs == 2
        assert spec.n_neurons == 3


class TestMultiplierGeneration:
    def test_zero_weights_create_no_multipliers(self):
        result = build_layer_circuit(make_spec(np.zeros((3, 2), dtype=int)), TECH, 0)
        assert result.n_multipliers == 0

    def test_one_multiplier_per_nonzero_without_sharing(self):
        weights = [[3, 5], [0, 7]]
        result = build_layer_circuit(
            make_spec(weights, share_products=False), TECH, 0
        )
        assert result.n_multipliers == 3
        assert result.n_shared_products == 0

    def test_sharing_merges_identical_magnitudes(self):
        # Input 0 feeds weights +5 and -5: one shared multiplier.
        weights = [[5, -5, 5], [3, 4, 0]]
        result = build_layer_circuit(make_spec(weights), TECH, 0)
        # row 0 -> {5}, row 1 -> {3, 4}
        assert result.n_multipliers == 3
        assert result.n_shared_products == 2

    def test_sharing_is_per_input_position_only(self):
        # Same magnitude on different inputs is NOT shared.
        weights = [[5, 0], [0, 5]]
        result = build_layer_circuit(make_spec(weights), TECH, 0)
        assert result.n_multipliers == 2

    def test_multiplier_attributes_record_fanout(self):
        weights = [[5, -5, 5]]
        result = build_layer_circuit(make_spec(weights), TECH, 0)
        multipliers = [c for c in result.components if c.kind == "multiplier"]
        assert multipliers[0].attributes["fanout"] == 3

    def test_distinct_products_per_input_helper(self):
        weights = np.array([[5, -5, 3], [0, 0, 0], [2, 4, 8]])
        assert distinct_products_per_input(weights) == [2, 0, 3]


class TestAdderTreesAndActivation:
    def test_one_tree_per_neuron(self):
        weights = [[1, 2, 3], [4, 5, 6]]
        result = build_layer_circuit(make_spec(weights), TECH, 0)
        trees = [c for c in result.components if c.kind == "adder_tree"]
        assert len(trees) == 3

    def test_pruned_connections_reduce_operands(self):
        dense = build_layer_circuit(make_spec([[7, 7], [9, 9], [11, 11]]), TECH, 0)
        sparse = build_layer_circuit(make_spec([[7, 7], [0, 0], [11, 11]]), TECH, 0)
        dense_tree = [c for c in dense.components if c.kind == "adder_tree"][0]
        sparse_tree = [c for c in sparse.components if c.kind == "adder_tree"][0]
        assert sparse_tree.attributes["n_operands"] < dense_tree.attributes["n_operands"]
        assert sparse_tree.cost.area < dense_tree.cost.area

    def test_nonzero_bias_adds_an_operand(self):
        without = build_layer_circuit(make_spec([[3], [5]]), TECH, 0)
        with_bias = build_layer_circuit(make_spec([[3], [5]], biases=[12]), TECH, 0)
        operands_without = without.components[-2].attributes["n_operands"]
        operands_with = [
            c for c in with_bias.components if c.kind == "adder_tree"
        ][0].attributes["n_operands"]
        assert operands_with == operands_without + 1

    def test_relu_components_only_when_requested(self):
        weights = [[1, 2]]
        with_relu = build_layer_circuit(make_spec(weights, relu=True), TECH, 0)
        without_relu = build_layer_circuit(make_spec(weights, relu=False), TECH, 0)
        assert any(c.kind == "activation" for c in with_relu.components)
        assert not any(c.kind == "activation" for c in without_relu.components)

    def test_output_bits_grow_with_operands(self):
        small = build_layer_circuit(make_spec(np.full((2, 1), 7, dtype=int)), TECH, 0)
        large = build_layer_circuit(make_spec(np.full((16, 1), 7, dtype=int)), TECH, 0)
        assert large.output_bits > small.output_bits

    def test_component_names_are_prefixed_and_unique(self):
        result = build_layer_circuit(make_spec([[1, 2], [3, 4]]), TECH, 3)
        names = [c.name for c in result.components]
        assert len(names) == len(set(names))
        assert all(name.startswith("layer3/") for name in names)

    def test_csd_method_cheaper_than_binary(self):
        weights = np.full((4, 4), 0b111011, dtype=int)
        csd = build_layer_circuit(make_spec(weights, multiplier_method="csd"), TECH, 0)
        binary = build_layer_circuit(make_spec(weights, multiplier_method="binary"), TECH, 0)
        csd_area = sum(c.cost.area for c in csd.components if c.kind == "multiplier")
        binary_area = sum(c.cost.area for c in binary.components if c.kind == "multiplier")
        assert csd_area < binary_area


class TestLatencyDepth:
    @pytest.mark.parametrize("operands, depth", [(0, 0), (1, 0), (2, 1), (5, 3), (8, 3), (9, 4)])
    def test_depth_values(self, operands, depth):
        assert estimate_layer_latency_depth(operands) == depth
