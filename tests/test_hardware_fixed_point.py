"""Tests for repro.hardware.fixed_point (shared weight/circuit number format)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.hardware.fixed_point import (
    FixedPointFormat,
    derive_format,
    max_symmetric_level,
    quantization_error,
    quantize_to_fixed_point,
    weights_to_integers,
)


class TestMaxLevelAndFormat:
    @pytest.mark.parametrize("bits, expected", [(2, 1), (3, 3), (4, 7), (8, 127)])
    def test_max_symmetric_level(self, bits, expected):
        assert max_symmetric_level(bits) == expected

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            max_symmetric_level(1)
        with pytest.raises(ValueError):
            FixedPointFormat(bits=1, scale=1.0)
        with pytest.raises(ValueError):
            FixedPointFormat(bits=4, scale=0.0)

    def test_derive_format_scale(self):
        weights = np.array([-0.5, 0.25, 0.5])
        fmt = derive_format(weights, bits=4)
        assert fmt.scale == pytest.approx(0.5 / 7)

    def test_all_zero_weights_get_unit_scale(self):
        fmt = derive_format(np.zeros(5), bits=4)
        assert fmt.scale == 1.0
        np.testing.assert_array_equal(fmt.to_integers(np.zeros(5)), np.zeros(5, dtype=int))


class TestQuantization:
    def test_max_weight_maps_to_max_level(self):
        weights = np.array([0.1, -0.8, 0.4])
        integers, fmt = weights_to_integers(weights, bits=5)
        assert integers[np.argmax(np.abs(weights))] in (-fmt.max_level, fmt.max_level)

    def test_levels_within_range(self):
        weights = np.random.default_rng(0).normal(size=200)
        integers, fmt = weights_to_integers(weights, bits=4)
        assert integers.max() <= fmt.max_level
        assert integers.min() >= -fmt.max_level

    def test_fake_quantized_consistent_with_integers(self):
        weights = np.random.default_rng(1).normal(size=50)
        quantized, fmt = quantize_to_fixed_point(weights, bits=6)
        np.testing.assert_allclose(quantized, fmt.to_floats(fmt.to_integers(weights)))

    def test_error_decreases_with_bits(self):
        weights = np.random.default_rng(2).normal(size=500)
        errors = [quantization_error(weights, bits) for bits in (2, 3, 4, 6, 8)]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_error_zero_for_representable_values(self):
        fmt = FixedPointFormat(bits=4, scale=0.25)
        values = fmt.to_floats(np.array([-7, -2, 0, 3, 7]))
        assert quantization_error(values, 4) == pytest.approx(0.0, abs=1e-12)

    def test_empty_array(self):
        quantized, fmt = quantize_to_fixed_point(np.array([]), bits=4)
        assert quantized.size == 0
        assert quantization_error(np.array([]), 4) == 0.0


class TestQuantizationProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=20),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantization_error_bounded_by_half_step(self, weights, bits):
        quantized, fmt = quantize_to_fixed_point(weights, bits)
        assert np.all(np.abs(weights - quantized) <= fmt.scale / 2 + 1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_idempotence(self, weights, bits):
        quantized, _ = quantize_to_fixed_point(weights, bits)
        twice, _ = quantize_to_fixed_point(quantized, bits)
        np.testing.assert_allclose(twice, quantized, atol=1e-12)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_sign_preserved(self, weights, bits):
        integers, _ = weights_to_integers(weights, bits)
        products = integers * weights
        assert np.all(products >= -1e-12)

    @given(st.integers(min_value=2, max_value=8))
    def test_distinct_levels_bounded(self, bits):
        weights = np.random.default_rng(0).normal(size=2000)
        integers, _ = weights_to_integers(weights, bits)
        assert len(np.unique(integers)) <= 2 ** bits - 1
