"""Unit tests for repro.nn.optimizers: convergence and state handling."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, RMSProp, available_optimizers, get_optimizer


def quadratic_gradient(params):
    """Gradient of f(p) = 0.5 * ||p - target||^2 with target = 3."""
    return [p - 3.0 for p in params]


def run_optimizer(optimizer, steps=300, start=10.0):
    params = [np.array([start, -start])]
    for _ in range(steps):
        grads = quadratic_gradient(params)
        optimizer.update(params, grads)
    return params[0]


class TestConvergence:
    def test_sgd_converges_on_quadratic(self):
        final = run_optimizer(SGD(learning_rate=0.1))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_sgd_with_momentum_converges(self):
        final = run_optimizer(SGD(learning_rate=0.05, momentum=0.9))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_sgd_nesterov_converges(self):
        final = run_optimizer(SGD(learning_rate=0.05, momentum=0.9, nesterov=True))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_adam_converges(self):
        final = run_optimizer(Adam(learning_rate=0.1), steps=600)
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-2)

    def test_rmsprop_converges(self):
        final = run_optimizer(RMSProp(learning_rate=0.05), steps=800)
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-2)

    def test_momentum_faster_than_plain_sgd_on_ill_conditioned(self):
        def elongated_gradient(params):
            p = params[0]
            return [np.array([0.02 * (p[0] - 1.0), 2.0 * (p[1] - 1.0)])]

        def distance_after(optimizer, steps=200):
            params = [np.array([10.0, 10.0])]
            for _ in range(steps):
                optimizer.update(params, elongated_gradient(params))
            return np.linalg.norm(params[0] - 1.0)

        plain = distance_after(SGD(learning_rate=0.3))
        momentum = distance_after(SGD(learning_rate=0.3, momentum=0.9))
        assert momentum < plain


class TestWeightDecay:
    def test_sgd_weight_decay_shrinks_weights(self):
        params = [np.array([1.0])]
        optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
        optimizer.update(params, [np.array([0.0])])
        assert params[0][0] < 1.0

    def test_adam_weight_decay_shrinks_weights(self):
        params = [np.array([1.0])]
        optimizer = Adam(learning_rate=0.1, weight_decay=0.5)
        optimizer.update(params, [np.array([0.0])])
        assert params[0][0] < 1.0


class TestStateHandling:
    def test_updates_are_in_place(self):
        params = [np.zeros(3)]
        reference = params[0]
        SGD(learning_rate=0.1).update(params, [np.ones(3)])
        assert params[0] is reference
        assert np.all(reference != 0.0)

    def test_adam_bias_correction_first_step(self):
        params = [np.array([0.0])]
        optimizer = Adam(learning_rate=0.1)
        optimizer.update(params, [np.array([1.0])])
        # With bias correction the first step magnitude equals the lr.
        assert params[0][0] == pytest.approx(-0.1, rel=1e-6)

    def test_reset_state_clears_momentum(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        params = [np.array([1.0])]
        optimizer.update(params, [np.array([1.0])])
        optimizer.reset_state()
        assert optimizer._velocities == {}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SGD().update([np.zeros(2)], [])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            SGD().update([np.zeros(2)], [np.zeros(3)])


class TestValidationAndRegistry:
    @pytest.mark.parametrize("bad_lr", [0.0, -1.0])
    def test_invalid_learning_rate(self, bad_lr):
        with pytest.raises(ValueError):
            SGD(learning_rate=bad_lr)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_registry_contains_all(self):
        assert set(available_optimizers()) == {"adam", "rmsprop", "sgd"}

    def test_get_optimizer_with_kwargs(self):
        optimizer = get_optimizer("sgd", learning_rate=0.5, momentum=0.8)
        assert isinstance(optimizer, SGD)
        assert optimizer.learning_rate == 0.5
        assert optimizer.momentum == 0.8

    def test_get_optimizer_unknown(self):
        with pytest.raises(KeyError):
            get_optimizer("lion")
