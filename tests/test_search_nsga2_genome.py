"""Tests for the NSGA-II primitives and the genome encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import genomes, objective_vectors, rng_seeds

from repro.search.genome import Genome, GenomeSpace
from repro.search.nsga2 import (
    crowding_distance,
    crowding_distance_reference,
    dominates,
    fast_non_dominated_sort,
    fast_non_dominated_sort_reference,
    nsga2_rank,
    select_survivors,
    tournament_select,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_no_dominance_when_tradeoff(self):
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([2.0, 2.0], [1.0, 3.0])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])


class TestNonDominatedSort:
    def test_known_fronts(self):
        objectives = [
            [1.0, 5.0],   # front 0
            [5.0, 1.0],   # front 0
            [2.0, 6.0],   # dominated by [1,5] -> front 1
            [6.0, 6.0],   # dominated by several -> front 2 or later
        ]
        fronts = fast_non_dominated_sort(objectives)
        assert set(fronts[0]) == {0, 1}
        assert 2 in fronts[1]
        assert 3 in fronts[-1]

    def test_all_non_dominated(self):
        objectives = [[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]]
        fronts = fast_non_dominated_sort(objectives)
        assert len(fronts) == 1
        assert set(fronts[0]) == {0, 1, 2, 3}

    def test_empty_input(self):
        assert fast_non_dominated_sort([]) == []

    @given(objectives=objective_vectors(allow_ties=False))
    @settings(max_examples=50, deadline=None)
    def test_fronts_partition_population(self, objectives):
        """Property over 2- AND 3-objective populations (the robustness-aware
        search ranks on three)."""
        objectives = [list(o) for o in objectives]
        fronts = fast_non_dominated_sort(objectives)
        flattened = [i for front in fronts for i in front]
        assert sorted(flattened) == list(range(len(objectives)))
        # No solution in front k is dominated by a solution in a later front.
        for earlier_index, front in enumerate(fronts):
            for later_front in fronts[earlier_index + 1 :]:
                for i in front:
                    for j in later_front:
                        assert not dominates(objectives[j], objectives[i])

    @given(objectives=objective_vectors())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_sort_and_crowding_match_reference(self, objectives):
        """Property: the vectorized NSGA-II primitives equal the retained
        reference loops — duplicate (tied) objective vectors included — at
        both objective arities."""
        objectives = [list(o) for o in objectives]
        assert fast_non_dominated_sort(objectives) == fast_non_dominated_sort_reference(
            objectives
        )
        fast = crowding_distance(objectives)
        reference = crowding_distance_reference(objectives)
        assert fast.tobytes() == reference.tobytes()


class TestCrowdingAndSelection:
    def test_boundary_points_infinite_distance(self):
        objectives = [[0.0, 4.0], [1.0, 3.0], [2.0, 2.0], [4.0, 0.0]]
        distances = crowding_distance(objectives)
        assert np.isinf(distances[0])
        assert np.isinf(distances[3])
        assert np.isfinite(distances[1])

    def test_single_solution(self):
        distances = crowding_distance([[1.0, 2.0]])
        assert np.isinf(distances[0])

    def test_empty(self):
        assert crowding_distance([]).size == 0

    def test_rank_prefers_earlier_front(self):
        objectives = [[1.0, 1.0], [2.0, 2.0]]
        keys = nsga2_rank(objectives)
        assert keys[0] < keys[1]

    def test_select_survivors_keeps_front_zero_first(self):
        objectives = [[1.0, 5.0], [5.0, 1.0], [6.0, 6.0], [2.0, 2.0]]
        survivors = select_survivors(objectives, 3)
        assert 2 not in survivors
        assert len(survivors) == 3

    def test_select_survivors_validation(self):
        with pytest.raises(ValueError):
            select_survivors([[1.0, 1.0]], -1)

    def test_tournament_select_returns_valid_index(self):
        generator = np.random.default_rng(0)
        objectives = [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]
        for _ in range(20):
            index = tournament_select(objectives, generator)
            assert 0 <= index < 3

    def test_tournament_prefers_dominating_solution(self):
        generator = np.random.default_rng(0)
        objectives = [[0.0, 0.0], [10.0, 10.0]]
        picks = [tournament_select(objectives, generator, tournament_size=2) for _ in range(50)]
        assert picks.count(0) > picks.count(1)

    def test_tournament_empty_rejected(self):
        with pytest.raises(ValueError):
            tournament_select([], np.random.default_rng(0))


class TestGenome:
    def test_validation(self):
        with pytest.raises(ValueError):
            Genome(weight_bits=(4,), sparsity=(0.2, 0.3), clusters=(2,))
        with pytest.raises(ValueError):
            Genome(weight_bits=(1,), sparsity=(0.0,), clusters=(0,))
        with pytest.raises(ValueError):
            Genome(weight_bits=(4,), sparsity=(1.0,), clusters=(0,))
        with pytest.raises(ValueError):
            Genome(weight_bits=(), sparsity=(), clusters=())

    def test_key_hashable_and_stable(self):
        a = Genome((4, 4), (0.2, 0.0), (0, 2))
        b = Genome((4, 4), (0.2, 0.0), (0, 2))
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())

    def test_as_dict(self):
        genome = Genome((4,), (0.3,), (2,))
        assert genome.as_dict() == {
            "weight_bits": [4],
            "sparsity": [0.3],
            "clusters": [2],
        }


class TestGenomeSpace:
    # Module scope: GenomeSpace is immutable, and hypothesis-driven tests
    # must not depend on function-scoped fixtures.
    @pytest.fixture(scope="module")
    def space(self):
        return GenomeSpace(n_layers=2)

    @given(seed=rng_seeds)
    @settings(max_examples=30, deadline=None)
    def test_random_genomes_within_alphabets(self, space, seed):
        generator = np.random.default_rng(seed)
        genome = space.random_genome(generator)
        assert all(b in space.bit_choices for b in genome.weight_bits)
        assert all(s in space.sparsity_choices for s in genome.sparsity)
        assert all(c in space.cluster_choices for c in genome.clusters)

    @given(genome=genomes())
    @settings(max_examples=40, deadline=None)
    def test_strategy_genomes_are_valid_and_cacheable(self, genome):
        """The shared genome strategy emits valid, hashable genomes whose
        dict form round-trips (what the evaluation cache relies on)."""
        assert genome.n_layers >= 1
        assert hash(genome.key()) == hash(Genome(**genome.as_dict()).key())
        assert Genome(**genome.as_dict()) == genome

    def test_baseline_genome_is_do_nothing(self, space):
        genome = space.baseline_genome()
        assert all(b == max(space.bit_choices) for b in genome.weight_bits)
        assert all(s == 0.0 for s in genome.sparsity)
        assert all(c == 0 for c in genome.clusters)

    def test_seed_genomes_cover_standalone_corners(self, space):
        seeds = space.seed_genomes()
        assert len(seeds) >= 3
        assert any(any(s > 0 for s in g.sparsity) for g in seeds)       # pruning corner
        assert any(any(c > 0 for c in g.clusters) for g in seeds)       # clustering corner
        assert any(any(b < 8 for b in g.weight_bits) for g in seeds)    # quantization corner

    @given(genome=genomes(min_layers=2, max_layers=2), seed=rng_seeds)
    @settings(max_examples=40, deadline=None)
    def test_mutation_stays_in_space(self, space, genome, seed):
        """Property: mutation maps any space genome back into the space for
        any RNG stream."""
        generator = np.random.default_rng(seed)
        for _ in range(10):
            genome = space.mutate_gene(genome, generator, mutation_rate=0.8)
            assert all(b in space.bit_choices for b in genome.weight_bits)
            assert all(s in space.sparsity_choices for s in genome.sparsity)
            assert all(c in space.cluster_choices for c in genome.clusters)

    @given(
        parent_a=genomes(min_layers=2, max_layers=2),
        parent_b=genomes(min_layers=2, max_layers=2),
        seed=rng_seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_crossover_genes_come_from_parents(self, space, parent_a, parent_b, seed):
        generator = np.random.default_rng(seed)
        child = space.crossover(parent_a, parent_b, generator)
        for layer in range(2):
            assert child.weight_bits[layer] in (
                parent_a.weight_bits[layer],
                parent_b.weight_bits[layer],
            )
            assert child.sparsity[layer] in (
                parent_a.sparsity[layer],
                parent_b.sparsity[layer],
            )
            assert child.clusters[layer] in (
                parent_a.clusters[layer],
                parent_b.clusters[layer],
            )

    def test_crossover_layer_mismatch_rejected(self, space):
        other = GenomeSpace(n_layers=3)
        generator = np.random.default_rng(3)
        with pytest.raises(ValueError):
            space.crossover(
                other.random_genome(generator), space.random_genome(generator), generator
            )

    def test_mutation_rate_validation(self, space):
        with pytest.raises(ValueError):
            space.mutate_gene(space.baseline_genome(), np.random.default_rng(0), 1.5)

    def test_space_size(self):
        space = GenomeSpace(n_layers=1, bit_choices=(2, 4), sparsity_choices=(0.0, 0.5), cluster_choices=(0, 2))
        assert space.size() == 8

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GenomeSpace(n_layers=0)
        with pytest.raises(ValueError):
            GenomeSpace(n_layers=1, bit_choices=())
