"""Unit tests for repro.nn.metrics."""

import numpy as np
import pytest

from repro.nn.metrics import (
    accuracy,
    accuracy_drop,
    confusion_matrix,
    per_class_accuracy,
    precision_recall_f1,
    top_k_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_half(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 1]) == 0.5

    def test_accepts_one_hot_targets(self):
        targets = np.array([[1, 0], [0, 1]])
        assert accuracy(targets, [0, 1]) == 1.0

    def test_accepts_probability_predictions(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy([0, 1], scores) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0, 1, 2])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_prediction(self):
        matrix = confusion_matrix([0, 1, 2, 2], [0, 1, 2, 2])
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_entries(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_explicit_class_count(self):
        matrix = confusion_matrix([0], [0], n_classes=5)
        assert matrix.shape == (5, 5)

    def test_rows_sum_to_true_counts(self):
        y_true = [0, 0, 1, 2, 2, 2]
        y_pred = [0, 1, 1, 0, 2, 2]
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix.sum(axis=1), [2, 1, 3])


class TestPerClassAndF1:
    def test_per_class_accuracy_values(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        values = per_class_accuracy(y_true, y_pred)
        np.testing.assert_allclose(values, [0.5, 1.0])

    def test_per_class_nan_for_absent_class(self):
        values = per_class_accuracy([0, 0], [0, 1])
        assert np.isnan(values[1])

    def test_micro_f1_equals_accuracy(self):
        y_true = [0, 1, 2, 1, 0]
        y_pred = [0, 2, 2, 1, 1]
        metrics = precision_recall_f1(y_true, y_pred, average="micro")
        assert metrics["f1"] == pytest.approx(accuracy(y_true, y_pred))

    def test_macro_perfect(self):
        metrics = precision_recall_f1([0, 1, 2], [0, 1, 2], average="macro")
        assert metrics == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_invalid_average_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_f1([0], [0], average="weighted")


class TestTopKAndDrop:
    def test_top_1_equals_accuracy(self):
        scores = np.array([[0.6, 0.4], [0.3, 0.7], [0.8, 0.2]])
        labels = [0, 1, 1]
        assert top_k_accuracy(labels, scores, k=1) == accuracy(labels, np.argmax(scores, axis=1))

    def test_top_k_monotone_in_k(self):
        generator = np.random.default_rng(0)
        scores = generator.normal(size=(50, 5))
        labels = generator.integers(0, 5, size=50)
        values = [top_k_accuracy(labels, scores, k=k) for k in range(1, 6)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_top_k_requires_2d_scores(self):
        with pytest.raises(ValueError):
            top_k_accuracy([0], np.array([0.5]), k=1)

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy([0], np.array([[0.5, 0.5]]), k=0)

    def test_accuracy_drop_sign(self):
        assert accuracy_drop(0.9, 0.85) == pytest.approx(0.05)
        assert accuracy_drop(0.9, 0.95) == pytest.approx(-0.05)
