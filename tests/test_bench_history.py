"""Tests of the benchmark recording helpers (``benchmarks/benchlib.py``).

``record_bench`` must keep refreshing ``BENCH_evaluation.json`` (latest
numbers) while *appending* to the commit-keyed ``BENCH_history.json``
trajectory, so perf numbers survive across PRs instead of being clobbered.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_BENCHLIB_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "benchlib.py"


@pytest.fixture()
def benchlib(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("_benchlib_under_test", _BENCHLIB_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "BENCH_JSON_PATH", tmp_path / "BENCH_evaluation.json")
    monkeypatch.setattr(module, "BENCH_HISTORY_PATH", tmp_path / "BENCH_history.json")
    return module


def test_record_bench_writes_current_and_history(benchlib):
    benchlib.record_bench("alpha", {"best_s": 1.0})
    current = json.loads(benchlib.BENCH_JSON_PATH.read_text())
    assert current["alpha"] == {"best_s": 1.0}
    assert "meta" in current
    history = json.loads(benchlib.BENCH_HISTORY_PATH.read_text())
    assert len(history["entries"]) == 1
    entry = history["entries"][0]
    section = entry["sections"]["alpha"]
    assert section["payload"] == {"best_s": 1.0}
    # Provenance travels with each section, not with the entry.
    assert section["mode"] in ("default", "smoke", "full")
    assert "workers" in section and "python" in section
    assert entry["commit"]
    assert entry["first_unix"] <= entry["last_unix"]


def test_same_commit_merges_sections(benchlib, monkeypatch):
    monkeypatch.setattr(benchlib, "_git_commit", lambda: "abc1234")
    benchlib.record_bench("alpha", {"best_s": 1.0})
    benchlib.record_bench("beta", {"best_s": 2.0})
    benchlib.record_bench("alpha", {"best_s": 0.5})  # refreshed, not duplicated
    history = json.loads(benchlib.BENCH_HISTORY_PATH.read_text())
    assert len(history["entries"]) == 1
    sections = history["entries"][0]["sections"]
    assert set(sections) == {"alpha", "beta"}
    assert sections["alpha"]["payload"] == {"best_s": 0.5}  # refreshed
    assert sections["beta"]["payload"] == {"best_s": 2.0}


def test_new_commit_appends_entry(benchlib, monkeypatch):
    monkeypatch.setattr(benchlib, "_git_commit", lambda: "commit-1")
    benchlib.record_bench("alpha", {"best_s": 1.0})
    monkeypatch.setattr(benchlib, "_git_commit", lambda: "commit-2")
    benchlib.record_bench("alpha", {"best_s": 0.8})
    history = json.loads(benchlib.BENCH_HISTORY_PATH.read_text())
    assert [entry["commit"] for entry in history["entries"]] == ["commit-1", "commit-2"]
    assert history["entries"][0]["sections"]["alpha"]["payload"]["best_s"] == 1.0
    assert history["entries"][1]["sections"]["alpha"]["payload"]["best_s"] == 0.8


def test_corrupt_history_is_recovered(benchlib):
    benchlib.BENCH_HISTORY_PATH.write_text("{not json")
    benchlib.record_bench("alpha", {"best_s": 1.0})
    history = json.loads(benchlib.BENCH_HISTORY_PATH.read_text())
    assert len(history["entries"]) == 1
