"""Fabric mechanics: publish, claim, merge, requeue, quarantine, fallback.

These tests drive the coordinator/worker protocol with a *stub* executor
(instant artifact writes, no real search) so they can exercise hundreds of
protocol interleavings in milliseconds. End-to-end byte-identity under
chaos runs with the real executor in ``test_fabric_chaos.py``.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignJournal, CampaignSpec, JobOutcome, campaign_status
from repro.campaign.fabric import (
    ChaosPolicy,
    FabricCoordinator,
    FabricLayout,
    FabricWorker,
    FaultSpec,
    ManualClock,
    RetryPolicy,
)

TTL = 10.0

#: Small spec: 2 datasets x 1 search x 1 seed = 2 jobs.
def _spec(datasets=("seeds", "redwine"), seeds=(0,)):
    return CampaignSpec.from_dict(
        {
            "name": "fabric-test",
            "datasets": list(datasets),
            "seeds": list(seeds),
            "pipeline": {"train_epochs": 3, "n_samples": 120, "finetune_epochs": 1},
            "searches": [{"algorithm": "random", "n_evaluations": 3}],
        }
    )


def stub_execute(job, directory, use_cache=True, cache_factory=None):
    """Instant fake executor: writes valid artifacts, returns a JobOutcome."""
    journal = CampaignJournal(directory)
    front = {"job_id": job.job_id, "dataset": job.dataset, "front": []}
    result = {"job": job.as_dict(), "status": "completed", "wall_s": 0.0}
    journal.write_job_artifacts(job.job_id, front, result)
    return JobOutcome(job_id=job.job_id, status="completed", front_size=0)


def _fabric(tmp_path, clock, spec=None, **kwargs):
    kwargs.setdefault("lease_ttl", TTL)
    kwargs.setdefault("worker_timeout", 0.0)
    kwargs.setdefault("execute_fn", stub_execute)
    kwargs.setdefault("now_fn", clock)
    kwargs.setdefault("sleep_fn", lambda s: None)
    return FabricCoordinator(spec or _spec(), tmp_path / "camp", **kwargs)


def _worker(coordinator, worker_id, clock, **kwargs):
    kwargs.setdefault("lease_ttl", TTL)
    kwargs.setdefault("execute_fn", stub_execute)
    kwargs.setdefault("now_fn", clock)
    kwargs.setdefault("sleep_fn", lambda s: None)
    return FabricWorker(coordinator.directory, worker_id=worker_id, **kwargs)


class TestPublish:
    def test_publish_creates_one_queue_entry_per_job(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        assert coordinator.publish() == 2
        layout = FabricLayout(coordinator.directory)
        ids = sorted(str(e["job"]["job_id"]) for e in layout.queue_entries())
        assert ids == ["redwine-random-s0", "seeds-random-s0"]

    def test_publish_is_idempotent(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        assert coordinator.publish() == 2
        assert coordinator.publish() == 0

    def test_publish_skips_completed_and_quarantined(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        worker = _worker(coordinator, "w1", clock)
        assert worker.step() == "completed"
        coordinator.step()
        layout = FabricLayout(coordinator.directory)
        # simulate a quarantined second job
        remaining = str(layout.queue_entries()[0]["job"]["job_id"])
        layout.queue_entry(remaining).unlink()
        layout.quarantine_dir.mkdir(parents=True, exist_ok=True)
        layout.quarantine_entry(remaining).write_text(
            json.dumps({"job_id": remaining, "requeues": 3})
        )
        fresh = _fabric(tmp_path, clock)
        assert fresh.publish() == 0

    def test_restarted_coordinator_republishes_failed_jobs(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        layout = FabricLayout(coordinator.directory)
        job_id = str(layout.queue_entries()[0]["job"]["job_id"])
        layout.queue_entry(job_id).unlink()
        layout.failed_dir.mkdir(parents=True, exist_ok=True)
        layout.failed_entry(job_id).write_text(
            json.dumps({"job_id": job_id, "error": "ValueError: boom"})
        )
        fresh = _fabric(tmp_path, clock)
        assert fresh.publish() == 1  # the failure record is cleared and retried
        assert not layout.failed_entry(job_id).exists()


class TestWorkerLifecycle:
    def test_two_workers_split_the_queue(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        w1 = _worker(coordinator, "w1", clock)
        w2 = _worker(coordinator, "w2", clock)
        assert w1.step() == "completed"
        assert w2.step() == "completed"
        status = coordinator.step()
        assert status.all_done and status.complete
        # terminal marker tells both workers to exit
        assert w1.step() == "done"
        assert w2.step() == "done"

    def test_worker_journal_events_are_merged_with_identity(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        _worker(coordinator, "w1", clock).step()
        coordinator.step()
        events = CampaignJournal(coordinator.directory).events()
        leased = [e for e in events if e["event"] == "job_leased"]
        completed = [e for e in events if e["event"] == "job_completed"]
        assert leased and leased[0]["worker_id"] == "w1"
        assert completed and completed[0]["worker_id"] == "w1"

    def test_merge_is_cursor_stable(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        worker = _worker(coordinator, "w1", clock)
        worker.step()
        assert coordinator.merge_worker_journals() > 0
        assert coordinator.merge_worker_journals() == 0  # nothing new
        worker.step()
        assert coordinator.merge_worker_journals() > 0

    def test_deterministic_failure_writes_failed_record(self, tmp_path):
        def exploding(job, directory, use_cache=True, cache_factory=None):
            raise ValueError("deterministic boom")

        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        worker = _worker(coordinator, "w1", clock, execute_fn=exploding)
        assert worker.step() == "failed"
        layout = FabricLayout(coordinator.directory)
        assert len(layout.failed_job_ids()) == 1
        record = json.loads(layout.failed_entry(layout.failed_job_ids()[0]).read_text())
        assert record["attempts"] == 1  # fail fast: no retries
        status = coordinator.step()
        assert status.failed == 1

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        calls = itertools.count()

        def flaky(job, directory, use_cache=True, cache_factory=None):
            if next(calls) == 0:
                raise OSError("transient filesystem hiccup")
            return stub_execute(job, directory, use_cache, cache_factory)

        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        worker = _worker(
            coordinator,
            "w1",
            clock,
            execute_fn=flaky,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        assert worker.step() == "completed"
        coordinator.step()
        events = CampaignJournal(coordinator.directory).events()
        retrying = [e for e in events if e["event"] == "job_retrying"]
        assert len(retrying) == 1 and retrying[0]["attempt"] == 1
        done = [e for e in events if e["event"] == "job_completed"]
        assert done[0]["attempts"] == 2

    def test_transient_failure_exhausts_attempts(self, tmp_path):
        def always_flaky(job, directory, use_cache=True, cache_factory=None):
            raise TimeoutError("never recovers")

        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        worker = _worker(
            coordinator,
            "w1",
            clock,
            execute_fn=always_flaky,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        assert worker.step() == "failed"
        layout = FabricLayout(coordinator.directory)
        record = json.loads(layout.failed_entry(layout.failed_job_ids()[0]).read_text())
        assert record["attempts"] == 2


class TestRequeueAndQuarantine:
    def test_expired_lease_is_requeued(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        stall = ChaosPolicy(faults=(FaultSpec("job_started", "stall", count=99),))
        hung = _worker(coordinator, "w1", clock, chaos=stall)
        assert hung.step() == "stalled"
        clock.advance(TTL + 1)
        coordinator.step()
        events = CampaignJournal(coordinator.directory).events()
        assert any(e["event"] == "lease_expired" for e in events)
        requeued = [e for e in events if e["event"] == "job_requeued"]
        assert len(requeued) == 1 and requeued[0]["requeues"] == 1
        # a healthy worker now drains everything
        w2 = _worker(coordinator, "w2", clock)
        while w2.step() == "completed":
            pass
        assert coordinator.step().complete

    def test_poison_job_is_quarantined_after_requeue_cap(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock, max_requeues=1)
        coordinator.publish()
        stall = ChaosPolicy(faults=(FaultSpec("job_started", "stall", count=999),))
        for n in range(2):  # hang the same job max_requeues + 1 times
            hung = _worker(coordinator, f"hang{n}", clock, chaos=stall)
            assert hung.step() == "stalled"
            clock.advance(TTL + 1)
            coordinator.step()
        layout = FabricLayout(coordinator.directory)
        assert len(layout.quarantined_job_ids()) == 1
        events = CampaignJournal(coordinator.directory).events()
        assert any(e["event"] == "job_quarantined" for e in events)
        # the rest of the campaign still completes; the quarantined job
        # is terminal and reported as such
        w2 = _worker(coordinator, "w2", clock)
        while w2.step() == "completed":
            pass
        status = coordinator.step()
        assert status.all_done and not status.complete
        assert status.quarantined == 1 and status.completed == 1

    def test_abandoned_worker_drops_a_stolen_job(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        stall = ChaosPolicy(faults=(FaultSpec("job_started", "stall", count=2),))
        hung = _worker(coordinator, "w1", clock, chaos=stall)
        assert hung.step() == "stalled"
        clock.advance(TTL + 1)
        coordinator.step()  # requeues the stalled job
        w2 = _worker(coordinator, "w2", clock)
        while w2.step() == "completed":
            pass
        assert hung.step() == "stalled"  # second stalled hit
        assert hung.step() == "abandoned"  # wakes, lease gone, drops the job
        assert coordinator.step().complete


class TestSerialFallbackAndStatus:
    def test_coordinator_degrades_to_serial_without_workers(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock, worker_timeout=0.0)
        summary = coordinator.run(poll_interval=0.0)
        assert summary.ok and summary.serial_fallback
        assert summary.inline_completed == 2
        events = CampaignJournal(coordinator.directory).events()
        assert any(e["event"] == "serial_fallback" for e in events)
        assert (
            sum(1 for e in events if e["event"] == "campaign_completed") == 1
        )

    def test_status_predicate_is_unified_across_modes(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock, worker_timeout=0.0)
        coordinator.run(poll_interval=0.0)
        status = campaign_status(coordinator.directory)
        assert status["state"] == "completed"
        assert status["completed"] == status["total"] == 2
        assert status["quarantined"] == 0

    def test_status_reports_quarantined_jobs(self, tmp_path):
        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock, max_requeues=0)
        coordinator.publish()
        stall = ChaosPolicy(faults=(FaultSpec("job_started", "stall", count=999),))
        hung = _worker(coordinator, "w1", clock, chaos=stall)
        hung.step()
        clock.advance(TTL + 1)
        coordinator.step()
        w2 = _worker(coordinator, "w2", clock)
        while w2.step() == "completed":
            pass
        coordinator.step()
        status = campaign_status(coordinator.directory)
        assert status["quarantined"] == 1
        assert status["state"] == "failed"  # terminal but not fully completed
        rows = {row["job_id"]: row["state"] for row in status["jobs"]}
        assert "quarantined" in rows.values()

    def test_forged_lease_on_completed_job_is_reaped(self, tmp_path):
        from repro.campaign.fabric import forge_lease

        clock = ManualClock()
        coordinator = _fabric(tmp_path, clock)
        coordinator.publish()
        w1 = _worker(coordinator, "w1", clock)
        while w1.step() == "completed":
            pass
        forge_lease(coordinator.leases, "seeds-random-s0", expires_in=TTL)
        coordinator.step()
        assert coordinator.leases.read("seeds-random-s0") is None


class TestFabricTerminationProperty:
    @given(
        script=st.lists(
            st.sampled_from(["w0", "w1", "coord", "advance"]), min_size=0, max_size=25
        ),
        stalls=st.tuples(st.integers(0, 3), st.integers(0, 3)),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_published_job_terminates(self, tmp_path_factory, script, stalls):
        """Liveness: any interleaving + drain ends with every job terminal,
        and no job is requeued more than the cap."""
        root = tmp_path_factory.mktemp("fabric-prop")
        clock = ManualClock()
        max_requeues = 2
        coordinator = _fabric(root, clock, max_requeues=max_requeues)
        coordinator.publish()
        workers = {
            f"w{i}": _worker(
                coordinator,
                f"w{i}",
                clock,
                chaos=ChaosPolicy(
                    faults=(FaultSpec("job_started", "stall", count=stalls[i]),)
                    if stalls[i]
                    else ()
                ),
            )
            for i in range(2)
        }
        for action in script:
            if action == "advance":
                clock.advance(TTL / 2)
            elif action == "coord":
                coordinator.step()
            else:
                workers[action].step()
        # drain: a healthy worker plus the coordinator must converge
        drainer = _worker(coordinator, "drain", clock)
        for _ in range(40):
            status = coordinator.step()
            if status.all_done:
                break
            if drainer.step() == "idle":
                clock.advance(TTL + 1)  # expire any stalled leases
        else:
            pytest.fail("fabric failed to converge")
        status = coordinator.step()
        assert status.pending == 0
        assert status.completed + status.failed + status.quarantined == status.total
        events = CampaignJournal(coordinator.directory).events()
        requeues_per_job = {}
        for event in events:
            if event["event"] == "job_requeued":
                job_id = event["job_id"]
                requeues_per_job[job_id] = requeues_per_job.get(job_id, 0) + 1
        for job_id, count in requeues_per_job.items():
            assert count <= max_requeues, f"{job_id} requeued {count} times"
