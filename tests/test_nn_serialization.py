"""Unit tests for repro.nn.serialization (save/load round-trips)."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.network import build_mlp
from repro.nn.serialization import load_model, save_model


@pytest.fixture
def model():
    return build_mlp(5, (4,), 3, dropout=0.1, seed=0)


class TestRoundTrip:
    def test_forward_identical_after_reload(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        reloaded = load_model(path)
        x = np.random.default_rng(0).normal(size=(6, 5))
        np.testing.assert_allclose(reloaded.forward(x), model.forward(x))

    def test_suffix_appended(self, model, tmp_path):
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_architecture_preserved(self, model, tmp_path):
        reloaded = load_model(save_model(model, tmp_path / "m.npz"))
        assert reloaded.topology() == model.topology()
        assert [type(l).__name__ for l in reloaded.layers] == [
            type(l).__name__ for l in model.layers
        ]

    def test_mask_preserved(self, model, tmp_path):
        layer = model.dense_layers[0]
        mask = np.ones_like(layer.weights)
        mask[0, :] = 0.0
        layer.mask = mask
        reloaded = load_model(save_model(model, tmp_path / "masked.npz"))
        np.testing.assert_array_equal(reloaded.dense_layers[0].mask, mask)

    def test_bias_disabled_preserved(self, tmp_path):
        from repro.nn.network import MLP

        model = MLP([Dense(3, 2, use_bias=False, rng=np.random.default_rng(0))])
        reloaded = load_model(save_model(model, tmp_path / "nobias.npz"))
        assert reloaded.dense_layers[0].use_bias is False

    def test_directories_created(self, model, tmp_path):
        path = save_model(model, tmp_path / "deep" / "nested" / "model.npz")
        assert path.exists()


class TestErrors:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")

    def test_unsupported_layer_rejected(self, tmp_path):
        from repro.nn.layers import Layer
        from repro.nn.network import MLP

        class Custom(Layer):
            def forward(self, inputs, training=False):
                return inputs

            def backward(self, grad_output):
                return grad_output

        with pytest.raises(TypeError):
            save_model(MLP([Custom()]), tmp_path / "custom.npz")

    def test_quantizer_hooks_not_serialized(self, model, tmp_path):
        model.dense_layers[0].weight_quantizer = lambda w: w
        reloaded = load_model(save_model(model, tmp_path / "q.npz"))
        assert reloaded.dense_layers[0].weight_quantizer is None
