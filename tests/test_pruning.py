"""Tests for repro.pruning: magnitude, structured, schedules and the sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import build_mlp
from repro.pruning import (
    PruningScheduleConfig,
    active_neurons_per_layer,
    gradual_magnitude_pruning,
    neuron_importance,
    one_shot_pruning,
    prune_by_magnitude,
    prune_layer_by_magnitude,
    prune_neurons,
    pruning_mask_summary,
    pruning_sweep,
    remove_pruning,
    sparsity_accuracy_curve,
)


@pytest.fixture
def model():
    return build_mlp(6, (5,), 3, seed=0)


class TestLayerPruning:
    def test_target_sparsity_achieved(self, model):
        layer = model.dense_layers[0]
        prune_layer_by_magnitude(layer, 0.4)
        assert layer.sparsity() == pytest.approx(0.4, abs=0.05)

    def test_smallest_magnitudes_removed_first(self, model):
        layer = model.dense_layers[0]
        magnitudes = np.abs(layer.weights)
        prune_layer_by_magnitude(layer, 0.3)
        pruned_magnitudes = magnitudes[layer.mask == 0.0]
        kept_magnitudes = magnitudes[layer.mask == 1.0]
        assert pruned_magnitudes.max() <= kept_magnitudes.min() + 1e-12

    def test_zero_sparsity_keeps_everything(self, model):
        layer = model.dense_layers[0]
        prune_layer_by_magnitude(layer, 0.0)
        assert layer.sparsity() == 0.0

    def test_repruning_respects_existing_mask(self, model):
        layer = model.dense_layers[0]
        prune_layer_by_magnitude(layer, 0.3)
        first_mask = layer.mask.copy()
        prune_layer_by_magnitude(layer, 0.5)
        # Everything pruned in the first pass stays pruned.
        assert np.all(layer.mask[first_mask == 0.0] == 0.0)

    def test_invalid_sparsity(self, model):
        with pytest.raises(ValueError):
            prune_layer_by_magnitude(model.dense_layers[0], 1.0)


class TestModelPruning:
    def test_global_ranking_overall_sparsity(self, model):
        result = prune_by_magnitude(model, 0.5, global_ranking=True)
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.1)
        assert result.n_pruned + model.n_active_connections() == result.n_total

    def test_per_layer_sparsity_list(self, model):
        result = prune_by_magnitude(model, [0.2, 0.6])
        assert result.per_layer_sparsity[0] == pytest.approx(0.2, abs=0.05)
        assert result.per_layer_sparsity[1] == pytest.approx(0.6, abs=0.1)

    def test_wrong_sparsity_list_length(self, model):
        with pytest.raises(ValueError):
            prune_by_magnitude(model, [0.2, 0.3, 0.4])

    def test_local_ranking_uniform_sparsity(self, model):
        prune_by_magnitude(model, 0.4, global_ranking=False)
        for layer in model.dense_layers:
            assert layer.sparsity() == pytest.approx(0.4, abs=0.1)

    def test_remove_pruning_restores_density(self, model):
        prune_by_magnitude(model, 0.5)
        remove_pruning(model)
        assert model.sparsity() == 0.0

    def test_mask_summary(self, model):
        prune_by_magnitude(model, 0.3)
        summary = pruning_mask_summary(model)
        assert summary["model_sparsity"] == pytest.approx(0.3, abs=0.1)
        assert all(entry["has_mask"] for entry in summary["layers"])

    def test_pruned_weights_stay_zero_in_effective(self, model):
        prune_by_magnitude(model, 0.5)
        for layer in model.dense_layers:
            assert np.count_nonzero(layer.effective_weights()) == np.count_nonzero(layer.mask)

    @given(st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_achieved_sparsity_close_to_target(self, sparsity):
        mlp = build_mlp(8, (6,), 4, seed=1)
        result = prune_by_magnitude(mlp, sparsity)
        assert abs(result.achieved_sparsity - sparsity) < 0.08


class TestStructuredPruning:
    def test_removes_requested_fraction(self):
        mlp = build_mlp(6, (8,), 3, seed=0)
        result = prune_neurons(mlp, 0.5)
        assert result.removed_neurons_per_layer == [4]
        assert active_neurons_per_layer(mlp)[0] == 4

    def test_outgoing_connections_also_removed(self):
        mlp = build_mlp(6, (8,), 3, seed=0)
        prune_neurons(mlp, 0.5)
        second = mlp.dense_layers[1]
        removed_rows = np.all(second.effective_weights() == 0.0, axis=1)
        assert removed_rows.sum() == 4

    def test_min_remaining_respected(self):
        mlp = build_mlp(4, (3,), 2, seed=0)
        result = prune_neurons(mlp, 0.9, min_remaining=2)
        assert active_neurons_per_layer(mlp)[0] >= 2
        assert result.total_removed <= 1

    def test_importance_scores_positive(self):
        mlp = build_mlp(5, (6,), 3, seed=0)
        scores = neuron_importance(mlp, 0)
        assert scores.shape == (6,)
        assert np.all(scores >= 0.0)

    def test_importance_invalid_layer(self):
        mlp = build_mlp(5, (6,), 3, seed=0)
        with pytest.raises(ValueError):
            neuron_importance(mlp, 1)

    def test_needs_hidden_layer(self):
        mlp = build_mlp(5, (), 3, seed=0)
        with pytest.raises(ValueError):
            prune_neurons(mlp, 0.5)

    def test_invalid_fraction(self):
        mlp = build_mlp(5, (4,), 3, seed=0)
        with pytest.raises(ValueError):
            prune_neurons(mlp, 1.0)


class TestSchedulesAndSweep:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.datasets import load_dataset, prepare_split, train_val_test_split

        return prepare_split(train_val_test_split(load_dataset("seeds"), seed=0), input_bits=4)

    @pytest.fixture(scope="class")
    def trained(self, data):
        from repro.nn import train_classifier

        model = build_mlp(7, (4,), 3, seed=0)
        train_classifier(
            model, data.train.features, data.train.labels,
            data.validation.features, data.validation.labels, epochs=60, seed=0,
        )
        return model

    def test_schedule_config_validation(self):
        with pytest.raises(ValueError):
            PruningScheduleConfig(target_sparsity=1.0)
        with pytest.raises(ValueError):
            PruningScheduleConfig(target_sparsity=0.5, n_steps=0)

    def test_schedule_ramp_monotone_and_reaches_target(self):
        config = PruningScheduleConfig(target_sparsity=0.6, n_steps=5)
        values = [config.sparsity_at_step(step) for step in range(1, 6)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(0.6)

    def test_cubic_ramp_front_loads_pruning(self):
        cubic = PruningScheduleConfig(target_sparsity=0.6, n_steps=4, cubic=True)
        linear = PruningScheduleConfig(target_sparsity=0.6, n_steps=4, cubic=False)
        assert cubic.sparsity_at_step(1) > linear.sparsity_at_step(1)

    def test_one_shot_pruning_with_finetune(self, trained, data):
        candidate = trained.clone()
        baseline_accuracy = trained.evaluate_accuracy(data.test.features, data.test.labels)
        result = one_shot_pruning(candidate, 0.4, data=data, finetune_epochs=8, seed=0)
        accuracy = candidate.evaluate_accuracy(data.test.features, data.test.labels)
        assert result.achieved_sparsity == pytest.approx(0.4, abs=0.08)
        assert accuracy >= baseline_accuracy - 0.15

    def test_gradual_pruning_reaches_target(self, trained, data):
        candidate = trained.clone()
        config = PruningScheduleConfig(target_sparsity=0.5, n_steps=3, epochs_per_step=3)
        results = gradual_magnitude_pruning(candidate, data, config, seed=0)
        assert len(results) == 3
        assert results[-1].achieved_sparsity == pytest.approx(0.5, abs=0.08)

    def test_sparsity_accuracy_curve_independent_levels(self, trained, data):
        curve = sparsity_accuracy_curve(trained, data, [0.2, 0.6], finetune_epochs=3, seed=0)
        assert len(curve) == 2
        assert curve[0]["target_sparsity"] == 0.2
        assert trained.sparsity() == 0.0  # original untouched

    def test_pruning_sweep_points(self, trained, data):
        points = pruning_sweep(
            trained, data, sparsity_range=(0.2, 0.6), finetune_epochs=3, seed=0
        )
        assert [p.parameters["target_sparsity"] for p in points] == [0.2, 0.6]
        assert points[1].area < points[0].area
        assert all(p.technique == "pruning" for p in points)
