"""End-to-end miss loop: 404 → enqueue → worker drains → refresh serves.

One test walks the full production story with the real CLI verbs — a
campaign is run and reported for ``seeds`` only, a query for ``redwine``
misses (404 + fabric queue entry), a real ``repro campaign work`` worker
drains the enqueued job, and a report-rebuilding refresh folds the new
front into the store, after which the same server answers the formerly
missing dataset with 200s. Everything in between is asserted, so a break
anywhere in the chain names its own stage.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.campaign.fabric.layout import FabricLayout
from repro.campaign.journal import REPORT_DIR
from repro.cli import main
from repro.serving import FrontStore, MissEnqueuer, start_server

SPEC = {
    "name": "miss-loop",
    "datasets": ["seeds"],
    "seeds": [0],
    "pipeline": {"train_epochs": 3, "n_samples": 120, "finetune_epochs": 1},
    "searches": [{"algorithm": "random", "n_evaluations": 2}],
}


def request(server, path, body=None):
    url = server.url + path
    req = (
        urllib.request.Request(url)
        if body is None
        else urllib.request.Request(url, data=json.dumps(body).encode(), method="POST")
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def test_miss_enqueue_work_refresh_closes_the_loop(tmp_path, capsys):
    out = tmp_path / "camp"
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))

    # Stage 1: a real campaign covers only "seeds".
    assert main(["campaign", "run", "--spec", str(spec_path), "--out", str(out)]) == 0
    assert main(["campaign", "report", "--out", str(out)]) == 0
    assert (out / REPORT_DIR / "front_seeds.json").exists()
    assert (out / REPORT_DIR / "front_seeds.npz").exists()

    store = FrontStore(out)
    server, _thread = start_server(store, enqueuer=MissEnqueuer(out))
    try:
        # Stage 2: the miss answers 404 and publishes a covering job.
        status, body = request(server, "/query", {"dataset": "redwine"})
        assert status == 404
        assert json.loads(body)["enqueued_job"] == "redwine-random-s0"
        layout = FabricLayout(out)
        entry = json.loads(layout.queue_entry("redwine-random-s0").read_text())
        assert entry["origin"] == "serving-miss"
        assert entry["job"]["dataset"] == "redwine"

        # Stage 3: a real elastic worker drains the enqueued job.
        assert (
            main(
                [
                    "campaign",
                    "work",
                    "--out",
                    str(out),
                    "--worker-id",
                    "miss-worker",
                    "--max-idle",
                    "0.5",
                    "--poll-interval",
                    "0.05",
                ]
            )
            == 0
        )
        assert "miss-worker: 1 completed" in capsys.readouterr().out
        assert (out / "jobs" / "redwine-random-s0" / "front.json").exists()

        # Stage 4: a report-rebuilding refresh folds the new front in.
        refreshed = store.refresh(rebuild_reports=True)
        assert refreshed["reports_rebuilt"] == 1
        assert (out / REPORT_DIR / "front_redwine.json").exists()
        assert (out / REPORT_DIR / "front_redwine.npz").exists()

        # Stage 5: the same server now answers the formerly missed dataset.
        status, body = request(server, "/fronts/redwine")
        assert status == 200
        assert body == (out / REPORT_DIR / "front_redwine.json").read_bytes()
        status, body = request(server, "/query", {"dataset": "redwine"})
        assert status == 200
        document = json.loads(body)
        assert document["dataset"] == "redwine"
        assert document["returned"] >= 1
        # The rebuilt report's summary still covers the original grid too.
        status, body = request(server, "/fronts/seeds")
        assert status == 200
        # The rebuilt front loads through the columnar fast path.
        assert store.view(out, "redwine").source == "npz"
    finally:
        server.shutdown()
        server.server_close()

    # A second rebuild pass is a no-op: the report now records the job.
    assert store.refresh(rebuild_reports=True)["reports_rebuilt"] == 0
