"""Cross-backend parity of the population tensor kernels.

Every test here is written against the parametrized ``backend`` fixture
(``tests/conftest.py``): the numpy reference backend always runs, and any
optional backend (torch) runs whenever its library is installed, skipping
cleanly otherwise. The contract being checked:

* on the **numpy** backend, results are *byte-identical* to the retained
  serial/reference implementations (the seam is a pure refactor there);
* on **torch**, integer outcomes (fault patterns, predictions, NSGA-II
  ranks) are exact and float training state agrees to BLAS reduction order
  (``allclose``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bespoke import BespokeConfig, FixedPointSimulator, population_accuracy
from repro.core.backend import NumpyBackend
from repro.nn.network import build_mlp
from repro.nn.stacked import finetune_stacked, predict_stacked, supports_stacking
from repro.nn.trainer import finetune
from repro.pruning.magnitude import prune_by_magnitude
from repro.quantization.qat import attach_quantizers
from repro.reliability import (
    FaultInjectionConfig,
    monte_carlo_fault_injection,
    monte_carlo_fault_injection_reference,
    monte_carlo_population,
)
from repro.search.nsga2 import (
    crowding_distance,
    crowding_distance_reference,
    fast_non_dominated_sort,
    fast_non_dominated_sort_reference,
    nsga2_rank,
    select_survivors,
)

REFERENCE = NumpyBackend()


def _float_assert(backend, actual, expected):
    """Byte equality on the numpy backend, allclose on accelerated ones."""
    actual, expected = np.asarray(actual), np.asarray(expected)
    if backend.name == "numpy":
        assert actual.tobytes() == expected.tobytes()
    else:
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-12)


# -- operation-level parity -----------------------------------------------------------


class TestOpParity:
    def test_matmul(self, backend, rng):
        a = rng.standard_normal((4, 6, 5))
        b = rng.standard_normal((4, 5, 3))
        _float_assert(backend, backend.matmul(a, b), REFERENCE.matmul(a, b))

    def test_segment_max(self, backend, rng):
        values = rng.standard_normal((5, 14))
        starts = np.array([0, 4, 9])
        _float_assert(
            backend,
            backend.segment_max(values, starts),
            REFERENCE.segment_max(values, starts),
        )

    def test_take(self, backend, rng):
        values = rng.standard_normal((3, 6))
        indices = np.array([5, 0, 0, 3])
        _float_assert(
            backend,
            backend.take(values, indices),
            REFERENCE.take(values, indices),
        )

    def test_smallest_k_same_selection(self, backend, rng):
        keys = rng.integers(0, 2**64, size=(8, 30), dtype=np.uint64)
        k = 6
        picks = np.sort(backend.smallest_k(keys, k), axis=-1)
        expected = np.sort(REFERENCE.smallest_k(keys, k), axis=-1)
        assert np.array_equal(picks, expected)

    def test_argmax_ties(self, backend):
        scores = np.array([[2.0, 5.0, 5.0, 1.0], [7.0, 7.0, 7.0, 7.0]])
        assert np.array_equal(backend.argmax(scores), REFERENCE.argmax(scores))

    def test_argsort_stable_with_duplicates(self, backend, rng):
        values = rng.integers(0, 5, size=40).astype(np.float64)
        assert np.array_equal(
            backend.argsort_stable(values), REFERENCE.argsort_stable(values)
        )

    def test_domination_matrix(self, backend, rng):
        objectives = rng.standard_normal((9, 3))
        assert np.array_equal(
            backend.domination_matrix(objectives),
            REFERENCE.domination_matrix(objectives),
        )

    def test_put_along_axis(self, backend, rng):
        base = rng.standard_normal((4, 10))
        indices = np.stack([rng.choice(10, size=3, replace=False) for _ in range(4)])
        values = rng.standard_normal((4, 3))
        ours, theirs = base.copy(), base.copy()
        backend.put_along_axis(ours, indices, values)
        REFERENCE.put_along_axis(theirs, indices, values)
        assert np.array_equal(ours, theirs)

    def test_quantize(self, backend, rng):
        values = rng.standard_normal((3, 12)) * 4
        scale = np.full((3, 12), 0.5)
        neg, pos = np.full_like(scale, -3.0), np.full_like(scale, 3.0)
        ours, theirs = np.empty_like(values), np.empty_like(values)
        backend.quantize(values, scale, neg, pos, out=ours)
        REFERENCE.quantize(values, scale, neg, pos, out=theirs)
        _float_assert(backend, ours, theirs)

    def test_adam_step(self, backend):
        shape = (3, 20)
        state = {}
        for ops, key in ((backend, "ours"), (REFERENCE, "theirs")):
            # fresh identically-seeded generators so both runs see the same data
            arrays = {
                name: np.random.default_rng(7 + i).standard_normal(shape)
                for i, name in enumerate(["params", "grads", "m", "v"])
            }
            arrays["v"] = np.abs(arrays["v"])
            buffers = {name: np.empty(shape) for name in ["step", "sq", "denom"]}
            rates = np.full((shape[0], 1), 0.003)
            ops.adam_step(
                arrays["params"], arrays["grads"], arrays["m"], arrays["v"],
                buffers["step"], buffers["sq"], buffers["denom"],
                rates, 0.9, 0.999, 1e-8, 3,
            )
            state[key] = arrays
        for name in ["params", "m", "v"]:
            _float_assert(backend, state["ours"][name], state["theirs"][name])

    def test_draws_from_bytes_is_shared(self, backend):
        raw = bytes(range(32))
        assert np.array_equal(
            backend.draws_from_bytes(raw, 2, 2), REFERENCE.draws_from_bytes(raw, 2, 2)
        )


# -- subsystem parity -----------------------------------------------------------------


def _quantized_population(n_features=7, n_classes=3):
    models = []
    for bits, do_prune, seed in [(3, True, 0), (4, False, 1), (6, True, 2)]:
        model = build_mlp(n_features, [4], n_classes, seed=seed)
        if do_prune:
            prune_by_magnitude(model, [0.4, 0.2], global_ranking=False)
        attach_quantizers(model, bits)
        models.append(model)
    return models


class TestStackedTrainingParity:
    def test_finetune_matches_serial(self, rng):
        generator = np.random.default_rng(5)
        x = generator.normal(size=(120, 7))
        y = generator.integers(0, 3, size=120)
        seeds = [21, 22, 23]
        serial = _quantized_population()
        for model, seed in zip(serial, seeds):
            finetune(model, x, y, epochs=4, learning_rate=0.003, seed=seed)
        stacked = _quantized_population()
        assert supports_stacking(stacked)
        finetune_stacked(
            stacked, x, y, epochs=4, learning_rate=0.003, seeds=seeds, backend="numpy"
        )
        for a, b in zip(serial, stacked):
            for la, lb in zip(a.dense_layers, b.dense_layers):
                assert la.weights.tobytes() == lb.weights.tobytes()
                assert la.bias.tobytes() == lb.bias.tobytes()

    def test_finetune_across_backends(self, backend):
        generator = np.random.default_rng(6)
        x = generator.normal(size=(100, 7))
        y = generator.integers(0, 3, size=100)
        seeds = [31, 32, 33]
        baseline = _quantized_population()
        finetune_stacked(baseline, x, y, epochs=3, seeds=seeds, backend=REFERENCE)
        routed = _quantized_population()
        finetune_stacked(routed, x, y, epochs=3, seeds=seeds, backend=backend)
        for a, b in zip(baseline, routed):
            for la, lb in zip(a.dense_layers, b.dense_layers):
                _float_assert(backend, lb.weights, la.weights)
                _float_assert(backend, lb.bias, la.bias)

    def test_predict_stacked_across_backends(self, backend):
        generator = np.random.default_rng(8)
        features = generator.normal(size=(50, 7))
        models = _quantized_population()
        assert np.array_equal(
            predict_stacked(models, features, backend=backend),
            predict_stacked(models, features, backend=REFERENCE),
        )


class TestSimulatorParity:
    def test_population_accuracy_across_backends(self, backend, seeds_model, seeds_data):
        simulators = [
            FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4, weight_bits=w))
            for w in (3, 4, 6)
        ]
        features, labels = seeds_data.test.features, seeds_data.test.labels
        routed = population_accuracy(simulators, features, labels, backend=backend)
        serial = np.array(
            [sim.evaluate_accuracy(features, labels) for sim in simulators]
        )
        assert np.array_equal(routed, serial)


class TestNsga2Parity:
    def test_sort_and_crowding_match_reference(self, backend, rng):
        objectives = rng.standard_normal((24, 2))
        objectives[5] = objectives[11]  # duplicated point exercises co-ranking
        fronts = fast_non_dominated_sort(objectives, backend=backend)
        assert fronts == fast_non_dominated_sort_reference(objectives)
        _float_assert(
            backend,
            crowding_distance(objectives, backend=backend),
            crowding_distance_reference(objectives),
        )

    def test_rank_and_survivors_across_backends(self, backend, rng):
        objectives = rng.standard_normal((30, 3))
        assert np.array_equal(
            nsga2_rank(objectives, backend=backend), nsga2_rank(objectives)
        )
        assert np.array_equal(
            select_survivors(objectives, 12, backend=backend),
            select_survivors(objectives, 12),
        )


class TestMonteCarloParity:
    @pytest.fixture(scope="class")
    def simulator(self, seeds_model):
        return FixedPointSimulator(
            seeds_model, BespokeConfig(input_bits=4, weight_bits=4)
        )

    @pytest.mark.parametrize("fault_model", ["open", "short", "level_shift"])
    def test_single_simulator_matches_reference(
        self, backend, simulator, seeds_data, fault_model
    ):
        config = FaultInjectionConfig(
            fault_rate=0.08, fault_model=fault_model, n_trials=5, seed=3
        )
        features, labels = seeds_data.test.features, seeds_data.test.labels
        routed = monte_carlo_fault_injection(
            simulator, features, labels, config, backend=backend
        )
        reference = monte_carlo_fault_injection_reference(
            simulator, features, labels, config
        )
        assert routed.accuracy_per_trial == reference.accuracy_per_trial
        assert routed.faults_per_trial == reference.faults_per_trial
        assert routed.fault_free_accuracy == reference.fault_free_accuracy

    def test_population_across_backends(self, backend, seeds_model, seeds_data):
        simulators = [
            FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4, weight_bits=w))
            for w in (3, 6)
        ]
        configs = [
            FaultInjectionConfig(fault_rate=0.05, n_trials=4, seed=s) for s in (1, 2)
        ]
        features, labels = seeds_data.test.features, seeds_data.test.labels
        routed = monte_carlo_population(
            simulators, features, labels, configs, backend=backend
        )
        baseline = monte_carlo_population(simulators, features, labels, configs)
        for a, b in zip(routed, baseline):
            assert a.accuracy_per_trial == b.accuracy_per_trial
            assert a.faults_per_trial == b.faults_per_trial
