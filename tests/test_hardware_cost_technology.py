"""Unit tests for repro.hardware.cost and repro.hardware.technology."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cost import HardwareCost
from repro.hardware.technology import (
    CellSpec,
    TechnologyLibrary,
    egt_library,
    get_technology,
    silicon_library,
)


class TestHardwareCostAlgebra:
    def test_zero_is_identity(self):
        cost = HardwareCost(area=1.0, power=2.0, delay=3.0, gate_counts={"FA": 4})
        combined = cost + HardwareCost.zero()
        assert combined.area == cost.area
        assert combined.power == cost.power
        assert combined.delay == cost.delay
        assert combined.gate_counts == cost.gate_counts

    def test_parallel_addition(self):
        a = HardwareCost(area=1.0, power=0.5, delay=10.0, gate_counts={"FA": 1})
        b = HardwareCost(area=2.0, power=0.25, delay=4.0, gate_counts={"FA": 2, "INV": 1})
        combined = a + b
        assert combined.area == 3.0
        assert combined.power == 0.75
        assert combined.delay == 10.0  # max, not sum
        assert combined.gate_counts == {"FA": 3, "INV": 1}

    def test_serial_addition_sums_delay(self):
        a = HardwareCost(area=1.0, delay=10.0)
        b = HardwareCost(area=2.0, delay=4.0)
        assert a.serial(b).delay == 14.0

    def test_sum_builtin_works(self):
        costs = [HardwareCost(area=1.0), HardwareCost(area=2.0), HardwareCost(area=3.0)]
        assert sum(costs).area == 6.0

    def test_scaled(self):
        cost = HardwareCost(area=1.5, power=1.0, delay=7.0, gate_counts={"FA": 2})
        scaled = cost.scaled(3)
        assert scaled.area == 4.5
        assert scaled.gate_counts == {"FA": 6}
        assert scaled.delay == 7.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            HardwareCost(area=1.0).scaled(-1)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            HardwareCost(area=-1.0)

    def test_total_gates_and_is_zero(self):
        assert HardwareCost.zero().is_zero()
        cost = HardwareCost(area=0.1, gate_counts={"INV": 2, "FA": 3})
        assert cost.total_gates == 5
        assert not cost.is_zero()

    def test_as_dict_roundtrip_fields(self):
        cost = HardwareCost(area=1.0, power=2.0, delay=3.0, gate_counts={"FA": 1})
        data = cost.as_dict()
        assert data["area"] == 1.0 and data["gate_counts"] == {"FA": 1}

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3),
                st.floats(min_value=0, max_value=1e3),
                st.floats(min_value=0, max_value=1e3),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_parallel_composition_properties(self, triples):
        costs = [HardwareCost(area=a, power=p, delay=d) for a, p, d in triples]
        total = sum(costs)
        assert total.area == pytest.approx(sum(c.area for c in costs))
        assert total.power == pytest.approx(sum(c.power for c in costs))
        assert total.delay == pytest.approx(max(c.delay for c in costs))


class TestCellSpec:
    def test_cost_scales_with_count(self):
        cell = CellSpec("NAND2", area=0.006, power=0.028, delay=25.0)
        cost = cell.cost(10)
        assert cost.area == pytest.approx(0.06)
        assert cost.gate_counts == {"NAND2": 10}
        assert cost.delay == 25.0

    def test_zero_count_is_zero_cost(self):
        cell = CellSpec("INV", area=0.004, power=0.02, delay=20.0)
        assert cell.cost(0).is_zero()

    def test_negative_count_rejected(self):
        cell = CellSpec("INV", area=0.004, power=0.02, delay=20.0)
        with pytest.raises(ValueError):
            cell.cost(-1)

    def test_invalid_characterization_rejected(self):
        with pytest.raises(ValueError):
            CellSpec("BAD", area=0.0, power=0.1, delay=1.0)


class TestTechnologyLibraries:
    def test_egt_contains_required_cells(self):
        tech = egt_library()
        for name in TechnologyLibrary.REQUIRED_CELLS:
            assert name in tech

    def test_missing_cell_rejected_at_construction(self):
        cells = {"INV": CellSpec("INV", 0.004, 0.02, 20.0)}
        with pytest.raises(ValueError):
            TechnologyLibrary("broken", cells)

    def test_unknown_cell_lookup_raises(self):
        with pytest.raises(KeyError):
            egt_library().cell("NAND8")

    def test_egt_relative_cell_sizes(self):
        tech = egt_library()
        # Printed full adders and flip-flops are much larger than inverters.
        assert tech.cell("FA").area > 5 * tech.cell("INV").area
        assert tech.cell("DFF").area > 5 * tech.cell("INV").area
        assert tech.cell("XOR2").area > tech.cell("NAND2").area

    def test_silicon_is_orders_of_magnitude_smaller(self):
        egt = egt_library()
        silicon = silicon_library()
        assert egt.cell("FA").area / silicon.cell("FA").area > 1e3

    def test_get_technology_lookup(self):
        assert get_technology("egt").name == "EGT"
        assert get_technology("SILICON").name == "SILICON"
        with pytest.raises(KeyError):
            get_technology("tsmc7")

    def test_cost_helper_matches_cell_cost(self):
        tech = egt_library()
        assert tech.cost("FA", 3).area == pytest.approx(tech.cell("FA").area * 3)

    def test_cell_names_sorted(self):
        names = egt_library().cell_names()
        assert list(names) == sorted(names)
