"""Query engine: hypothesis properties plus deterministic semantics tests.

The properties quantify over full front documents (2- and 3-objective
arities, optional robust columns — :func:`strategies.front_documents`)
and query payloads (:func:`strategies.front_query_payloads`):

* every point a constrained query returns satisfies its constraints;
* top-k results are a prefix of the same query's full stable ranking;
* querying the union of two campaigns equals querying one campaign whose
  report is the Pareto-merged document of both (the ``report.py`` merge);
* queries never mutate the store — raw bytes, decoded points and
  columnar arrays are identical before and after arbitrary queries.
"""

from __future__ import annotations

import json
import math
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.journal import REPORT_DIR, write_json_atomic
from repro.core.pareto import pareto_front
from repro.core.results import DesignPoint
from repro.serving import (
    FrontQuery,
    FrontStore,
    QueryEngine,
    QueryValidationError,
)
from strategies import front_documents, front_query_payloads

#: (constraint field, objective column, direction) triples the properties check.
CONSTRAINT_AXES = (
    ("min_accuracy", "accuracy", "min"),
    ("max_area", "area", "max"),
    ("max_power", "power", "max"),
    ("max_delay", "delay", "max"),
    ("min_robust_accuracy", "robust_accuracy", "min"),
)


def materialize(documents):
    """Write each document as one campaign directory; returns their paths.

    The caller owns the temporary root (kept alive by returning it).
    """
    root = tempfile.TemporaryDirectory()
    campaigns = []
    for index, document in enumerate(documents):
        campaign = Path(root.name) / f"camp{index}"
        (campaign / REPORT_DIR).mkdir(parents=True)
        write_json_atomic(
            campaign / REPORT_DIR / f"front_{document['dataset']}.json", document
        )
        campaigns.append(campaign)
    return root, campaigns


def engine_over(documents):
    """``(root, engine)`` for a store indexing one campaign per document."""
    root, campaigns = materialize(documents)
    return root, QueryEngine(FrontStore(campaigns))


# -- properties ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(document=front_documents(), payload=front_query_payloads())
def test_every_returned_point_satisfies_the_constraints(document, payload):
    root, engine = engine_over([document])
    with root:
        result = engine.run(payload)
        query = result.query
        for point in result.points:
            for field, column, direction in CONSTRAINT_AXES:
                bound = getattr(query, field)
                if bound is None:
                    continue
                value = getattr(point, column)
                assert value is not None  # NaN/absent never satisfies a bound
                if direction == "min":
                    assert value >= bound
                else:
                    assert value <= bound


@settings(max_examples=40, deadline=None)
@given(
    document=front_documents(min_points=1),
    payload=front_query_payloads(),
    k=st.integers(1, 5),
)
def test_top_k_is_a_prefix_of_the_full_ranking(document, payload, k):
    payload.pop("top_k", None)
    root, engine = engine_over([document])
    with root:
        full = engine.run(payload)
        limited = engine.run({**payload, "top_k": k})
        prefix = [point.as_dict() for point in full.points[:k]]
        assert [point.as_dict() for point in limited.points] == prefix
        assert limited.matched == full.matched  # top_k trims, never re-filters


@settings(max_examples=30, deadline=None)
@given(
    document_a=front_documents(min_points=1),
    document_b=front_documents(min_points=1),
    payload=front_query_payloads(),
)
def test_query_of_union_equals_query_of_merged_report(document_a, document_b, payload):
    """query(union(A, B)) == query(merged-report(A, B))."""
    points = [
        DesignPoint(**row) for row in document_a["front"] + document_b["front"]
    ]
    robust = all(point.robust_accuracy is not None for point in points)
    merged_document = {
        "dataset": "seeds",
        "baseline": document_a["baseline"],
        "front": [p.as_dict() for p in pareto_front(points, robust=robust)],
        "combined_best_gain": 1.0,
    }
    union_root, union_engine = engine_over([document_a, document_b])
    merged_root, merged_engine = engine_over([merged_document])
    with union_root, merged_root:
        union_result = union_engine.run(payload)
        merged_result = merged_engine.run(payload)
        if payload.get("include_dominated"):
            return  # raw unions legitimately differ from the merged report
        assert [p.as_dict() for p in union_result.points] == [
            p.as_dict() for p in merged_result.points
        ]
        assert union_result.matched == merged_result.matched


@settings(max_examples=25, deadline=None)
@given(
    document=front_documents(min_points=1),
    payloads=st.lists(front_query_payloads(), min_size=1, max_size=4),
)
def test_queries_never_mutate_the_store(document, payloads):
    root, engine = engine_over([document])
    with root:
        store = engine.store
        before_raw = store.raw_front("seeds")
        view = store.views("seeds")[0]
        before_points = [point.as_dict() for point in view.points]
        before_columns = {name: array.copy() for name, array in view.columns.items()}
        for payload in payloads:
            engine.run(payload)
        after = store.views("seeds")[0]
        assert store.raw_front("seeds") == before_raw
        assert [point.as_dict() for point in after.points] == before_points
        for name, array in after.columns.items():
            assert array.tolist() == pytest.approx(
                before_columns[name].tolist(), nan_ok=True
            )


@settings(max_examples=25, deadline=None)
@given(document=front_documents(), payload=front_query_payloads())
def test_result_round_trips_through_json(document, payload):
    """``POST /query`` responses must serialize; counts must be consistent."""
    root, engine = engine_over([document])
    with root:
        result = engine.run(payload)
        decoded = json.loads(json.dumps(result.as_dict()))
        assert decoded["returned"] == len(result.points) <= decoded["matched"]
        assert decoded["matched"] <= decoded["total_points"]


# -- deterministic semantics ---------------------------------------------------------


def build_engine(tmp_path, rows, dataset="seeds"):
    campaign = tmp_path / "camp"
    (campaign / REPORT_DIR).mkdir(parents=True)
    write_json_atomic(
        campaign / REPORT_DIR / f"front_{dataset}.json",
        {"dataset": dataset, "baseline": None, "front": rows, "combined_best_gain": 1.0},
    )
    return QueryEngine(FrontStore(campaign))


def row(accuracy, area, robust=None):
    entry = {
        "technique": "combined",
        "accuracy": accuracy,
        "area": area,
        "power": 1.0,
        "delay": 0.5,
        "parameters": {},
    }
    if robust is not None:
        entry["robust_accuracy"] = robust
        entry["accuracy_std"] = 0.01
    return entry


def test_default_ranking_is_ascending_area(tmp_path):
    engine = build_engine(tmp_path, [row(0.9, 3.0), row(0.7, 1.0), row(0.8, 2.0)])
    result = engine.run({"dataset": "seeds"})
    assert [point.area for point in result.points] == [1.0, 2.0, 3.0]


def test_descending_ranking_by_accuracy(tmp_path):
    engine = build_engine(tmp_path, [row(0.7, 1.0), row(0.9, 3.0), row(0.8, 2.0)])
    result = engine.run(
        {"dataset": "seeds", "order_by": "accuracy", "descending": True}
    )
    assert [point.accuracy for point in result.points] == [0.9, 0.8, 0.7]


def test_ties_keep_front_order(tmp_path):
    """The ranking sort is stable: equal keys preserve document order."""
    rows = [row(0.9, 2.0), row(0.8, 2.0), row(0.7, 2.0)]
    engine = build_engine(tmp_path, rows)
    result = engine.run({"dataset": "seeds", "include_dominated": True})
    assert [point.accuracy for point in result.points] == [0.9, 0.8, 0.7]


def test_dominated_points_hidden_by_default_and_served_on_opt_in(tmp_path):
    rows = [row(0.9, 1.0), row(0.8, 2.0)]  # the second is dominated
    engine = build_engine(tmp_path, rows)
    assert engine.run({"dataset": "seeds"}).total_points == 1
    opted = engine.run({"dataset": "seeds", "include_dominated": True})
    assert opted.total_points == 2


def test_min_robust_accuracy_never_matches_robustness_off_points(tmp_path):
    engine = build_engine(tmp_path, [row(0.9, 1.0), row(0.95, 2.0, robust=0.9)])
    result = engine.run(
        {"dataset": "seeds", "min_robust_accuracy": 0.5, "include_dominated": True}
    )
    assert [point.robust_accuracy for point in result.points] == [0.9]


def test_nearest_orders_by_normalized_distance(tmp_path):
    engine = build_engine(
        tmp_path, [row(0.6, 4.0), row(0.9, 2.0), row(0.7, 1.0)]
    )
    result = engine.run(
        {"dataset": "seeds", "nearest": {"accuracy": 0.9, "area": 2.0},
         "include_dominated": True}
    )
    assert result.points[0].accuracy == 0.9 and result.points[0].area == 2.0
    assert result.distances is not None
    assert list(result.distances) == sorted(result.distances)
    assert result.distances[0] == 0.0


def test_nearest_distance_count_matches_returned_points(tmp_path):
    engine = build_engine(tmp_path, [row(0.6, 4.0), row(0.9, 2.0), row(0.7, 1.0)])
    result = engine.run(
        {"dataset": "seeds", "nearest": {"area": 2.0}, "top_k": 2,
         "include_dominated": True}
    )
    assert len(result.distances) == len(result.points) == 2


def test_empty_front_yields_empty_result(tmp_path):
    engine = build_engine(tmp_path, [])
    result = engine.run({"dataset": "seeds", "min_accuracy": 0.5})
    assert result.points == () and result.total_points == 0 and result.matched == 0


def test_query_as_dict_round_trip(tmp_path):
    query = FrontQuery(
        dataset="seeds",
        min_accuracy=0.8,
        max_area=2.0,
        fault_rate=0.05,
        order_by="power",
        descending=True,
        top_k=3,
        nearest={"accuracy": 0.9},
        include_dominated=True,
    )
    assert FrontQuery.from_dict(query.as_dict()) == query


# -- validation ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "payload",
    [
        {"dataset": ""},
        {"dataset": "../../../../tmp/evil"},
        {"dataset": ".."},
        {"dataset": "a/b"},
        {"dataset": "seeds", "bogus": 1},
        {"dataset": "seeds", "min_accuracy": 1.5},
        {"dataset": "seeds", "min_accuracy": float("nan")},
        {"dataset": "seeds", "max_area": "cheap"},
        {"dataset": "seeds", "fault_rate": -0.1},
        {"dataset": "seeds", "order_by": "beauty"},
        {"dataset": "seeds", "top_k": 0},
        {"dataset": "seeds", "top_k": 2.5},
        {"dataset": "seeds", "nearest": {}},
        {"dataset": "seeds", "nearest": {"beauty": 1.0}},
        {"dataset": "seeds", "nearest": {"area": float("inf")}},
        {"dataset": "seeds", "nearest": {"area": None}},
        {"dataset": "seeds", "descending": "yes"},
    ],
)
def test_invalid_payloads_raise_validation_errors(payload):
    with pytest.raises(QueryValidationError):
        FrontQuery.from_dict(payload)


def test_non_mapping_body_rejected():
    with pytest.raises(QueryValidationError, match="JSON object"):
        FrontQuery.from_dict(["dataset", "seeds"])


def test_validation_error_is_a_value_error():
    assert issubclass(QueryValidationError, ValueError)


def test_nan_is_rejected_even_where_finite_floats_pass():
    FrontQuery(dataset="seeds", max_area=2.0)
    with pytest.raises(QueryValidationError, match="finite"):
        FrontQuery(dataset="seeds", max_area=math.inf)
