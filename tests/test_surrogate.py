"""The surrogate subsystem: featurizer, models, journal training, assistant.

The ISSUE-8 property layer: the featurizer is total and deterministic over
the full genome space, both surrogate models are seeded pure functions of
their training data, ``fit_from_cache`` round-trips records written by a
real :class:`~repro.campaign.cache.PersistentEvaluationCache` (torn tails,
rotated generations and unversioned legacy records included), and the
assistant's prefilter can never evict an already-evaluated genome.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.cache import (
    CACHE_SCHEMA_VERSION,
    PersistentEvaluationCache,
    load_journal_records,
)
from repro.core.results import DesignPoint
from repro.search.genome import Genome, GenomeSpace
from repro.surrogate import (
    SURROGATE_MODELS,
    GenomeFeaturizer,
    MLPSurrogate,
    RidgeSurrogate,
    SurrogateAssistant,
    SurrogateModel,
    create_surrogate,
    fit_from_cache,
    surrogate_seed,
)

from strategies import genomes


def _point(
    accuracy: float = 0.8,
    area: float = 50.0,
    robust_accuracy: float | None = None,
) -> DesignPoint:
    return DesignPoint(
        technique="combined",
        accuracy=accuracy,
        area=area,
        power=area / 10.0,
        delay=1.0,
        robust_accuracy=robust_accuracy,
    )


def _training_set(n: int = 50, n_layers: int = 2, seed: int = 0):
    """Genomes plus a smooth synthetic target matrix for model tests."""
    space = GenomeSpace(n_layers=n_layers)
    rng = np.random.default_rng(seed)
    pool = {}
    while len(pool) < n:
        genome = space.random_genome(rng)
        pool[genome.key()] = genome
    batch = list(pool.values())[:n]
    X = GenomeFeaturizer().transform(batch)
    Y = np.stack(
        [
            np.array(
                [sum(g.weight_bits) * (1.0 - float(np.mean(g.sparsity))) for g in batch]
            ),
            np.array([float(sum(b * b for b in g.weight_bits)) for g in batch]),
        ],
        axis=1,
    )
    return batch, X, Y


class TestGenomeFeaturizer:
    @settings(max_examples=60, deadline=None)
    @given(genome=genomes())
    def test_total_and_deterministic_over_genome_space(self, genome):
        """Any valid genome featurizes to the same finite fixed-width row."""
        featurizer = GenomeFeaturizer()
        first = featurizer.transform([genome])
        second = featurizer.transform([genome])
        assert first.shape == (1, featurizer.n_features)
        assert np.isfinite(first).all()
        assert np.array_equal(first, second)
        fresh = GenomeFeaturizer().transform([genome])
        assert np.array_equal(first, fresh)

    def test_feature_names_match_width(self):
        featurizer = GenomeFeaturizer(n_layers=3)
        names = featurizer.feature_names()
        assert len(names) == featurizer.n_features
        assert len(set(names)) == len(names)

    def test_layer_count_locks_on_first_transform(self):
        featurizer = GenomeFeaturizer()
        featurizer.transform([Genome((4, 4), (0.0, 0.2), (0, 2))])
        assert featurizer.n_layers == 2
        with pytest.raises(ValueError, match="2"):
            featurizer.transform([Genome((4,), (0.0,), (0,))])

    def test_feature_names_before_transform_raises(self):
        with pytest.raises(ValueError, match="not fixed"):
            GenomeFeaturizer().feature_names()


class TestSurrogateModels:
    @pytest.mark.parametrize("name", SURROGATE_MODELS)
    def test_fits_a_smooth_function_of_the_genes(self, name):
        _, X, Y = _training_set()
        model = create_surrogate(name).fit(X, Y, seed=1)
        relative_error = np.abs(model.predict(X) - Y).mean() / np.abs(Y).mean()
        assert relative_error < 0.15

    @pytest.mark.parametrize("name", SURROGATE_MODELS)
    def test_fit_is_deterministic_given_seed(self, name):
        _, X, Y = _training_set()
        a = create_surrogate(name).fit(X, Y, seed=7).predict(X)
        b = create_surrogate(name).fit(X, Y, seed=7).predict(X)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", SURROGATE_MODELS)
    def test_uncertainty_shape_and_sign(self, name):
        _, X, Y = _training_set()
        mean, std = create_surrogate(name).fit(X, Y, seed=0).predict_with_uncertainty(X)
        assert mean.shape == std.shape == Y.shape
        assert (std >= 0).all()

    @pytest.mark.parametrize("name", SURROGATE_MODELS)
    def test_satisfies_the_protocol(self, name):
        assert isinstance(create_surrogate(name), SurrogateModel)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RidgeSurrogate().predict(np.zeros((1, 3)))
        with pytest.raises(RuntimeError, match="not fitted"):
            MLPSurrogate().predict(np.zeros((1, 3)))

    def test_unknown_model_name_raises(self):
        with pytest.raises(ValueError, match="unknown surrogate"):
            create_surrogate("forest")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RidgeSurrogate(n_members=1)
        with pytest.raises(ValueError):
            RidgeSurrogate(degree=3)
        with pytest.raises(ValueError):
            MLPSurrogate(epochs=0)

    def test_zero_samples_raise(self):
        with pytest.raises(ValueError, match="zero samples"):
            RidgeSurrogate().fit(np.zeros((0, 4)), np.zeros((0, 2)))


class TestFitFromCache:
    def _fill_cache(self, tmp_path, context="ctx", n=16, robust=False, rotate=None):
        space = GenomeSpace(n_layers=2)
        rng = np.random.default_rng(3)
        cache = PersistentEvaluationCache(
            tmp_path, context, rotate_max_bytes=rotate
        )
        genomes_written = []
        with cache:
            while len(genomes_written) < n:
                genome = space.random_genome(rng)
                if genome.key() in {g.key() for g in genomes_written}:
                    continue
                accuracy = 0.5 + 0.4 * rng.random()
                cache.put(
                    genome,
                    _point(
                        accuracy=accuracy,
                        area=20.0 + 100.0 * rng.random(),
                        robust_accuracy=accuracy * 0.9 if robust else None,
                    ),
                )
                genomes_written.append(genome)
        return genomes_written

    def test_round_trips_real_campaign_records(self, tmp_path):
        written = self._fill_cache(tmp_path, n=20)
        trained = fit_from_cache(tmp_path)
        assert trained.n_records == 20
        assert trained.target_columns == ("accuracy", "area", "power")
        predictions = trained.predict(written[:5])
        assert predictions.shape == (5, 3)
        assert np.isfinite(predictions).all()
        mean, std = trained.predict_with_uncertainty(written[:5])
        assert mean.shape == std.shape == (5, 3)

    def test_robust_column_joins_when_every_record_has_it(self, tmp_path):
        self._fill_cache(tmp_path, robust=True)
        trained = fit_from_cache(tmp_path)
        assert trained.target_columns[-1] == "robust_accuracy"

    def test_reads_rotated_generations(self, tmp_path):
        self._fill_cache(tmp_path, n=12, rotate=256)
        assert list(tmp_path.glob("ctx.g[0-9]*.jsonl")), "rotation did not trigger"
        assert fit_from_cache(tmp_path).n_records == 12

    def test_tolerates_torn_tail(self, tmp_path):
        self._fill_cache(tmp_path, n=10)
        with open(tmp_path / "ctx.jsonl", "a") as handle:
            handle.write('{"genome": {"weight_bits": [5')
        assert fit_from_cache(tmp_path).n_records == 10

    def test_pools_contexts_and_restricts_by_key(self, tmp_path):
        self._fill_cache(tmp_path, context="ctx-a", n=8)
        self._fill_cache(tmp_path, context="ctx-b", n=8)
        assert fit_from_cache(tmp_path).n_records <= 16
        assert fit_from_cache(tmp_path, context_key="ctx-a").n_records == 8

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no usable journal records"):
            fit_from_cache(tmp_path)

    @pytest.mark.parametrize("name", SURROGATE_MODELS)
    def test_both_models_train_from_cache(self, tmp_path, name):
        written = self._fill_cache(tmp_path, n=20)
        trained = fit_from_cache(tmp_path, model=name, seed=5)
        assert trained.n_records == 20
        assert np.isfinite(trained.predict(written[:3])).all()


class TestJournalSchemaVersion:
    def test_new_records_are_stamped(self, tmp_path):
        with PersistentEvaluationCache(tmp_path, "ctx") as cache:
            cache.put(Genome((4,), (0.2,), (0,)), _point())
        entry = json.loads((tmp_path / "ctx.jsonl").read_text().splitlines()[0])
        assert entry["v"] == CACHE_SCHEMA_VERSION

    def test_unversioned_legacy_records_load_as_version_zero(self, tmp_path):
        legacy = {
            "genome": Genome((5,), (0.1,), (2,)).as_dict(),
            "point": {"technique": "combined", "accuracy": 0.7, "area": 30.0},
        }
        (tmp_path / "ctx.jsonl").write_text(json.dumps(legacy) + "\n")
        records = load_journal_records(tmp_path)
        assert len(records) == 1
        assert records[0].schema_version == 0
        assert records[0].point.accuracy == 0.7
        # The in-cache loader accepts them too.
        reloaded = PersistentEvaluationCache(tmp_path, "ctx")
        assert reloaded.n_loaded == 1
        reloaded.close()

    def test_records_from_a_newer_schema_are_skipped(self, tmp_path):
        future = {
            "genome": Genome((5,), (0.1,), (2,)).as_dict(),
            "point": {"technique": "combined", "accuracy": 0.7, "area": 30.0},
            "v": CACHE_SCHEMA_VERSION + 1,
        }
        (tmp_path / "ctx.jsonl").write_text(json.dumps(future) + "\n")
        assert load_journal_records(tmp_path) == []

    def test_deduped_by_genome_key_first_wins(self, tmp_path):
        genome = Genome((4,), (0.2,), (3,))
        def record(accuracy, area):
            point = {"technique": "combined", "accuracy": accuracy, "area": area}
            return {"genome": genome.as_dict(), "point": point, "v": 1}

        lines = [record(0.8, 10.0), record(0.1, 99.0)]
        (tmp_path / "ctx.jsonl").write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        records = load_journal_records(tmp_path)
        assert len(records) == 1
        assert records[0].point.accuracy == 0.8

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        assert load_journal_records(tmp_path / "nope") == []


class TestSurrogateSeed:
    def test_stable_and_generation_dependent(self):
        assert surrogate_seed(0, 3) == surrogate_seed(0, 3)
        assert surrogate_seed(0, 3) != surrogate_seed(0, 4)
        assert surrogate_seed(1, 3) != surrogate_seed(0, 3)
        assert surrogate_seed(None, 3) is None


class TestSurrogateAssistant:
    def _assistant(self, n_observed: int = 30, optimism: float = 1.0):
        baseline = DesignPoint(technique="baseline", accuracy=0.9, area=100.0)
        assistant = SurrogateAssistant(baseline, optimism=optimism)
        space = GenomeSpace(n_layers=2)
        rng = np.random.default_rng(11)
        pool = {}
        while len(pool) < n_observed:
            genome = space.random_genome(rng)
            pool[genome.key()] = genome
        observed = list(pool.values())
        points = [
            _point(accuracy=0.5 + 0.4 * rng.random(), area=20.0 + 80.0 * rng.random())
            for _ in observed
        ]
        assistant.observe(observed, points)
        return assistant, observed

    def test_refit_gates_on_min_samples(self):
        baseline = DesignPoint(technique="baseline", accuracy=0.9, area=100.0)
        assistant = SurrogateAssistant(baseline, min_fit_samples=8)
        assistant.observe(
            [Genome((4,), (0.0,), (0,))], [_point()]
        )
        assert not assistant.refit(0)
        assert not assistant.ready
        # Unfitted ranking is the identity order.
        assert assistant.rank([Genome((4,), (0.0,), (0,))] ) == [0]

    def test_rank_is_a_deterministic_permutation(self):
        assistant, observed = self._assistant()
        assert assistant.refit(0)
        order = assistant.rank(observed[:12])
        assert sorted(order) == list(range(12))
        assert assistant.rank(observed[:12]) == order

    @settings(max_examples=40, deadline=None)
    @given(
        candidate_indices=st.lists(st.integers(0, 29), min_size=1, max_size=40),
        cached_indices=st.sets(st.integers(0, 29), max_size=30),
        budget=st.integers(0, 10),
    )
    def test_prefilter_never_evicts_cached_genomes(
        self, candidate_indices, cached_indices, budget
    ):
        """Every already-evaluated candidate survives selection at zero cost.

        The GA passes the keys of all really-evaluated genomes (a superset
        of its Pareto archive), so this is exactly the 'prefiltering never
        evicts current Pareto-archive genomes' property of ISSUE 8.
        """
        assistant, observed = self._assistant()
        assistant.refit(0)
        candidates = [observed[i] for i in candidate_indices]
        cached_keys = {observed[i].key() for i in cached_indices}
        free, chosen = assistant.select(candidates, cached_keys, budget)
        candidate_cached_keys = {g.key() for g in candidates if g.key() in cached_keys}
        assert {g.key() for g in free} == candidate_cached_keys
        assert all(g.key() not in cached_keys for g in chosen)
        assert len(chosen) <= budget
        # Deterministic: repeating the selection yields the same split.
        free2, chosen2 = assistant.select(candidates, cached_keys, budget)
        assert [g.key() for g in free2] == [g.key() for g in free]
        assert [g.key() for g in chosen2] == [g.key() for g in chosen]

    def test_optimism_must_be_nonnegative(self):
        baseline = DesignPoint(technique="baseline", accuracy=0.9, area=100.0)
        with pytest.raises(ValueError, match="optimism"):
            SurrogateAssistant(baseline, optimism=-0.5)

    def test_bad_model_name_fails_at_construction(self):
        baseline = DesignPoint(technique="baseline", accuracy=0.9, area=100.0)
        with pytest.raises(ValueError, match="unknown surrogate"):
            SurrogateAssistant(baseline, model="forest")

    def test_robust_mode_requires_robust_accuracy(self):
        baseline = DesignPoint(technique="baseline", accuracy=0.9, area=100.0)
        assistant = SurrogateAssistant(baseline, robust=True)
        with pytest.raises(ValueError, match="robust_accuracy"):
            assistant.observe([Genome((4,), (0.0,), (0,))], [_point()])

    def test_predicted_objectives_shape_tracks_robustness(self):
        baseline = DesignPoint(technique="baseline", accuracy=0.9, area=100.0)
        assistant = SurrogateAssistant(baseline, robust=True, min_fit_samples=8)
        space = GenomeSpace(n_layers=2)
        rng = np.random.default_rng(5)
        pool = {}
        while len(pool) < 20:
            genome = space.random_genome(rng)
            pool[genome.key()] = genome
        observed = list(pool.values())
        assistant.observe(
            observed,
            [
                _point(accuracy=0.6 + 0.3 * rng.random(), robust_accuracy=0.5)
                for _ in observed
            ],
        )
        assistant.refit(0)
        predicted = assistant.predicted_objectives(observed[:4])
        assert predicted.shape == (4, 3)
        assert (predicted >= 0.0).all()
