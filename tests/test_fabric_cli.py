"""The ``repro campaign coordinate|work`` CLI verbs.

Includes the compact real-SIGKILL smoke: a worker subprocess is killed
mid-campaign and a subsequent coordinate (serial fallback) finishes the
job grid byte-identically to an uninterrupted ``campaign run``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, FabricCoordinator
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

_SPEC = {
    "name": "fabric-cli",
    "datasets": ["seeds"],
    "seeds": [0, 1],
    "pipeline": {"train_epochs": 3, "n_samples": 120, "finetune_epochs": 1},
    "searches": [{"algorithm": "random", "n_evaluations": 3}],
}

JOB_IDS = ("seeds-random-s0", "seeds-random-s1")


def _write_spec(tmp_path, spec=None, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(spec if spec is not None else _SPEC))
    return path


class TestCoordinateVerb:
    def test_coordinate_without_workers_falls_back_to_serial(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path)
        out = str(tmp_path / "camp")
        assert main(
            ["campaign", "coordinate", "--spec", str(spec_path), "--out", out,
             "--worker-timeout", "0", "--poll-interval", "0"]
        ) == 0
        captured = capsys.readouterr().out
        assert "2/2 jobs completed" in captured
        assert "serial fallback engaged" in captured
        # the unified status predicate sees a completed campaign
        assert main(["campaign", "status", "--out", out]) == 0
        status_out = capsys.readouterr().out
        assert "state      : completed" in status_out
        assert "2/2 completed" in status_out

    def test_coordinate_is_resumable(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path)
        out = str(tmp_path / "camp")
        assert main(
            ["campaign", "coordinate", "--spec", str(spec_path), "--out", out,
             "--worker-timeout", "0", "--poll-interval", "0"]
        ) == 0
        capsys.readouterr()
        # coordinating a finished campaign is a no-op success
        assert main(
            ["campaign", "coordinate", "--spec", str(spec_path), "--out", out,
             "--worker-timeout", "0", "--poll-interval", "0"]
        ) == 0
        assert "2/2 jobs completed" in capsys.readouterr().out

    def test_coordinate_without_fallback_respects_wall_bound(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path)
        out = str(tmp_path / "camp")
        assert main(
            ["campaign", "coordinate", "--spec", str(spec_path), "--out", out,
             "--worker-timeout", "0", "--no-serial-fallback",
             "--max-wall", "0.3", "--poll-interval", "0.05"]
        ) == 1  # nothing ran: no workers, fallback disabled
        assert "0/2 jobs completed" in capsys.readouterr().out

    def test_coordinate_missing_spec_reports_cleanly(self, tmp_path, capsys):
        assert main(
            ["campaign", "coordinate", "--spec", str(tmp_path / "absent.json"),
             "--out", str(tmp_path / "camp")]
        ) == 1
        assert "not found" in capsys.readouterr().out

    def test_coordinate_fingerprint_mismatch_reports_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "camp")
        assert main(
            ["campaign", "coordinate", "--spec", str(_write_spec(tmp_path)),
             "--out", out, "--worker-timeout", "0", "--poll-interval", "0"]
        ) == 0
        capsys.readouterr()
        edited = dict(_SPEC, seeds=[7])
        edited_path = _write_spec(tmp_path, edited, name="edited.json")
        assert main(
            ["campaign", "coordinate", "--spec", str(edited_path), "--out", out]
        ) == 1
        assert "fingerprint mismatch" in capsys.readouterr().out


class TestWorkVerb:
    def test_work_drains_a_published_queue(self, tmp_path, capsys):
        out = tmp_path / "camp"
        FabricCoordinator(CampaignSpec.from_dict(_SPEC), out).publish()
        assert main(
            ["campaign", "work", "--out", str(out), "--worker-id", "cli-worker",
             "--max-idle", "0.1", "--poll-interval", "0.01"]
        ) == 0
        assert "cli-worker: 2 completed" in capsys.readouterr().out
        for job_id in JOB_IDS:
            assert (out / "jobs" / job_id / "result.json").exists()

    def test_work_without_campaign_directory_reports_cleanly(self, tmp_path, capsys):
        assert main(["campaign", "work", "--out", str(tmp_path / "nowhere")]) == 1
        assert "not found" in capsys.readouterr().out


class TestFabricKillSmoke:
    """Real SIGKILL on a worker subprocess; coordinate finishes the grid."""

    def _start_worker(self, out_dir, worker_id):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign", "work",
             "--out", str(out_dir), "--worker-id", worker_id,
             "--lease-ttl", "2", "--poll-interval", "0.05", "--max-idle", "30"],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigkilled_worker_campaign_is_byte_identical(self, tmp_path):
        spec_path = _write_spec(tmp_path)

        # Reference: uninterrupted single-host run.
        ref_dir = tmp_path / "reference"
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(ref_dir)]
        ) == 0

        # Victim fabric: publish, let a worker subprocess start, kill it
        # as soon as the first completion marker appears.
        out = tmp_path / "fabric"
        FabricCoordinator(CampaignSpec.from_dict(json.loads(spec_path.read_text())),
                          out, lease_ttl=2.0).publish()
        worker = self._start_worker(out, "victim")
        first_marker = out / "jobs" / JOB_IDS[0] / "result.json"
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                if first_marker.exists() or worker.poll() is not None:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("fabric worker made no progress within 120s")
        finally:
            if worker.poll() is None:
                worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=60)

        # Coordinate finishes whatever the dead worker left behind (its
        # lease, if any, expires within --lease-ttl seconds).
        assert main(
            ["campaign", "coordinate", "--spec", str(spec_path), "--out", str(out),
             "--worker-timeout", "0", "--lease-ttl", "2", "--poll-interval", "0.05"]
        ) == 0

        for job_id in JOB_IDS:
            reference = (ref_dir / "jobs" / job_id / "front.json").read_bytes()
            fabric = (out / "jobs" / job_id / "front.json").read_bytes()
            assert reference == fabric, f"front diverged for {job_id}"
        assert main(["campaign", "report", "--out", str(ref_dir)]) == 0
        assert main(["campaign", "report", "--out", str(out)]) == 0
        assert (out / "report" / "summary.json").read_bytes() == (
            ref_dir / "report" / "summary.json"
        ).read_bytes()
