"""HTTP serving layer: routes, metrics, concurrency, on-miss enqueue.

The concurrency tests are the load-bearing ones: N threads hammer
``POST /query`` and ``GET /fronts/<ds>`` while the store is concurrently
``refresh()``-ed and its backing report rewritten — every response must
be a well-formed 200 matching one of the two valid document snapshots
(no torn responses, no 5xx). The miss-enqueue tests pin the dedupe
contract: however many threads miss the same dataset simultaneously,
exactly one fabric queue entry appears, in the coordinator's format.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign.fabric.layout import FabricLayout
from repro.campaign.journal import REPORT_DIR, write_json_atomic
from repro.campaign.spec import CampaignSpec
from repro.serving import FrontStore, MissEnqueuer, ServingMetrics, start_server
from repro.serving.http import MAX_BODY_BYTES, ServingHandler

SPEC = {
    "name": "serving-test",
    "datasets": ["seeds"],
    "seeds": [0],
    "searches": [
        {"algorithm": "ga", "name": "ga", "population_size": 4, "n_generations": 2}
    ],
    "pipeline": {"fast": True},
}


def front_document(accuracies):
    return {
        "dataset": "seeds",
        "baseline": None,
        "front": [
            {
                "technique": "combined",
                "accuracy": accuracy,
                "area": round(1.0 + index, 1),
                "power": 1.0,
                "delay": 0.5,
                "parameters": {},
            }
            for index, accuracy in enumerate(sorted(accuracies, reverse=True))
        ],
        "combined_best_gain": 2.0,
    }


@pytest.fixture
def campaign(tmp_path):
    campaign = tmp_path / "camp"
    (campaign / REPORT_DIR).mkdir(parents=True)
    write_json_atomic(
        campaign / REPORT_DIR / "front_seeds.json", front_document([0.9, 0.8])
    )
    write_json_atomic(campaign / "spec.json", SPEC)
    return campaign


@pytest.fixture
def server(campaign):
    store = FrontStore(campaign)
    server, _thread = start_server(store, enqueuer=MissEnqueuer(campaign))
    yield server
    server.shutdown()
    server.server_close()


def request(server, path, body=None):
    """``(status, decoded JSON or raw bytes)`` for one request."""
    url = server.url + path
    req = (
        urllib.request.Request(url)
        if body is None
        else urllib.request.Request(
            url, data=json.dumps(body).encode(), method="POST"
        )
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


# -- routes --------------------------------------------------------------------------


def test_healthz_reports_dataset_count(server):
    status, body = request(server, "/healthz")
    assert status == 200
    assert json.loads(body) == {"status": "ok", "datasets": 1}


def test_datasets_route_lists_sorted_names(server):
    status, body = request(server, "/datasets")
    assert status == 200
    assert json.loads(body) == {"datasets": ["seeds"], "count": 1}


def test_fronts_route_is_byte_identical_to_report_file(server, campaign):
    status, body = request(server, "/fronts/seeds")
    assert status == 200
    assert body == (campaign / REPORT_DIR / "front_seeds.json").read_bytes()


def test_query_route_filters_and_ranks(server):
    status, body = request(
        server, "/query", {"dataset": "seeds", "min_accuracy": 0.85}
    )
    assert status == 200
    document = json.loads(body)
    assert document["matched"] == 1
    assert document["points"][0]["accuracy"] == 0.9
    assert document["returned"] == 1


def test_query_route_rejects_invalid_body_with_400(server):
    assert request(server, "/query", {"dataset": "seeds", "bogus": 1})[0] == 400
    assert request(server, "/query", {"dataset": ""})[0] == 400


def test_query_route_rejects_malformed_json_with_400(server):
    req = urllib.request.Request(
        server.url + "/query", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=10)
    assert excinfo.value.code == 400


def test_unknown_routes_answer_404(server):
    assert request(server, "/nope")[0] == 404
    status, body = request(server, "/query/extra", {"dataset": "seeds"})
    assert status == 404


def test_metrics_counts_requests_and_latency(server):
    request(server, "/datasets")
    request(server, "/query", {"dataset": "seeds"})
    request(server, "/query", {"dataset": "seeds", "bogus": 1})
    status, body = request(server, "/metrics")
    assert status == 200
    metrics = json.loads(body)
    assert metrics["requests"]["GET /datasets"] == 1
    assert metrics["requests"]["POST /query"] == 2
    assert metrics["responses"]["2xx"] >= 2 and metrics["responses"]["4xx"] == 1
    latency = metrics["latency"]
    assert latency["count"] >= 3
    assert latency["p50_ms"] is not None and latency["p99_ms"] is not None
    assert latency["p50_ms"] <= latency["p99_ms"]
    assert sum(bucket["count"] for bucket in latency["buckets"]) == latency["count"]


# -- on-miss enqueue -----------------------------------------------------------------


def test_miss_answers_404_and_enqueues_exactly_one_job(server, campaign):
    status, body = request(server, "/query", {"dataset": "cardio"})
    assert status == 404
    assert json.loads(body)["enqueued_job"] == "cardio-ga-s0"
    layout = FabricLayout(campaign)
    entry = json.loads(layout.queue_entry("cardio-ga-s0").read_text())
    assert entry["job"]["job_id"] == "cardio-ga-s0"
    assert entry["job"]["dataset"] == "cardio"
    assert entry["requeues"] == 0
    assert entry["origin"] == "serving-miss"
    # The entry reuses the campaign's own search/pipeline template.
    spec = CampaignSpec.from_dict(SPEC)
    assert entry["job"]["search"] == dict(spec.searches[0].params)
    assert entry["job"]["pipeline"] == {"fast": True}


def test_repeated_misses_keep_a_single_queue_entry(server, campaign):
    for _ in range(4):
        request(server, "/fronts/cardio")
    queue = list(FabricLayout(campaign).queue_dir.glob("*.json"))
    assert [path.name for path in queue] == ["cardio-ga-s0.json"]


def test_distinct_misses_enqueue_one_entry_each(server, campaign):
    request(server, "/query", {"dataset": "cardio"})
    request(server, "/query", {"dataset": "redwine"})
    request(server, "/query", {"dataset": "cardio"})
    names = sorted(p.name for p in FabricLayout(campaign).queue_dir.glob("*.json"))
    assert names == ["cardio-ga-s0.json", "redwine-ga-s0.json"]


def test_concurrent_misses_dedupe_to_one_entry(server, campaign):
    barrier = threading.Barrier(8)
    errors = []

    def miss():
        barrier.wait()
        status, _ = request(server, "/query", {"dataset": "cardio"})
        if status != 404:
            errors.append(status)

    threads = [threading.Thread(target=miss) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    queue = list(FabricLayout(campaign).queue_dir.glob("*.json"))
    assert len(queue) == 1


def test_miss_without_enqueuer_answers_404_with_null_job(campaign):
    server, _thread = start_server(FrontStore(campaign))
    try:
        status, body = request(server, "/query", {"dataset": "cardio"})
        assert status == 404
        assert json.loads(body)["enqueued_job"] is None
        assert not FabricLayout(campaign).queue_dir.exists()
    finally:
        server.shutdown()
        server.server_close()


def test_miss_enqueuer_skips_unreadable_spec(tmp_path):
    campaign = tmp_path / "camp"
    (campaign / REPORT_DIR).mkdir(parents=True)
    write_json_atomic(
        campaign / REPORT_DIR / "front_seeds.json", front_document([0.9])
    )
    # No spec.json at all: the enqueuer cannot template a job.
    server, _thread = start_server(
        FrontStore(campaign), enqueuer=MissEnqueuer(campaign)
    )
    try:
        status, body = request(server, "/query", {"dataset": "cardio"})
        assert status == 404
        assert json.loads(body)["enqueued_job"] is None
        assert not FabricLayout(campaign).queue_dir.exists()
    finally:
        server.shutdown()
        server.server_close()


def test_enqueuer_respects_existing_queue_entry(campaign):
    """A coordinator-published entry is never overwritten by a miss."""
    layout = FabricLayout(campaign)
    layout.queue_dir.mkdir(parents=True)
    original = {"job": {"job_id": "cardio-ga-s0"}, "requeues": 1, "published": 1.0}
    write_json_atomic(layout.queue_entry("cardio-ga-s0"), original)
    enqueuer = MissEnqueuer(campaign)
    assert enqueuer.enqueue("cardio") == "cardio-ga-s0"
    assert json.loads(layout.queue_entry("cardio-ga-s0").read_text()) == original


def test_miss_enqueuer_refuses_unsafe_dataset_names(campaign, tmp_path):
    """Request-derived names never steer a write outside the queue dir."""
    enqueuer = MissEnqueuer(campaign)
    for evil in (
        "../../../../" + str(tmp_path / "evil").lstrip("/"),
        "..",
        ".hidden",
        "a/b",
        "",
    ):
        assert enqueuer.enqueue(evil) is None
    assert not FabricLayout(campaign).queue_dir.exists()
    assert not (tmp_path / "evil.json").exists()


def test_query_with_traversal_dataset_is_rejected_not_enqueued(server, campaign):
    status, body = request(server, "/query", {"dataset": "../../../../tmp/evil"})
    assert status == 400
    assert json.loads(body)["error"] == "invalid query"
    assert not FabricLayout(campaign).queue_dir.exists()


def test_fronts_route_traversal_misses_without_enqueue(server, campaign):
    """A raw traversal URL (no client normalization) 404s and enqueues nothing."""
    host, port = server.server_address[:2]
    target = "/fronts/../../../../tmp/evil"
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        data = b""
        while chunk := sock.recv(65536):
            data += chunk
    assert data.split(b" ", 2)[1] == b"404"
    assert json.loads(data.split(b"\r\n\r\n", 1)[1])["enqueued_job"] is None
    assert not FabricLayout(campaign).queue_dir.exists()


def test_handler_failure_mapping_keeps_framing_safe():
    """Client disconnects answer 499; late failures never inject a 500."""
    handler = ServingHandler.__new__(ServingHandler)
    # A reset mid-exchange is the client's doing: 499, drop the connection,
    # send nothing (a send would explode on this socketless handler).
    handler.close_connection = False
    handler._response_started = True
    assert handler._handle_failure(ConnectionResetError()) == 499
    assert handler.close_connection
    handler.close_connection = False
    assert handler._handle_failure(BrokenPipeError()) == 499
    assert handler.close_connection
    # An unexpected error after the response started must not write a
    # second status line into the keep-alive stream.
    handler.close_connection = False
    assert handler._handle_failure(ValueError("boom")) == 500
    assert handler.close_connection


def test_serve_foreground_loop_refreshes_and_stops_on_interrupt(
    campaign, monkeypatch, capsys
):
    """The ``repro serve`` loop refreshes periodically and shuts down cleanly."""
    from repro.serving import http as serving_http

    calls = {"sleep": 0, "refresh": 0}
    real_refresh = FrontStore.refresh

    def counting_refresh(self):
        calls["refresh"] += 1
        return real_refresh(self)

    def fake_sleep(seconds):
        assert seconds == 0.01
        calls["sleep"] += 1
        if calls["sleep"] >= 2:
            raise KeyboardInterrupt

    monkeypatch.setattr(FrontStore, "refresh", counting_refresh)
    monkeypatch.setattr(serving_http.time, "sleep", fake_sleep)
    serving_http.serve([campaign], port=0, refresh_seconds=0.01, enqueue_misses=True)
    out = capsys.readouterr().out
    assert "serving 1 dataset front(s) on http://127.0.0.1:" in out
    assert calls["refresh"] == 1  # one loop iteration before the interrupt


# -- concurrency under refresh -------------------------------------------------------


DOC_A = front_document([0.9, 0.8])
DOC_B = front_document([0.95, 0.7, 0.6])


def hammer(server, path, body, n_threads, per_thread, valid_bodies=None):
    """Fire concurrent requests; returns the list of protocol violations."""
    barrier = threading.Barrier(n_threads)
    violations = []

    def worker():
        barrier.wait()
        for _ in range(per_thread):
            status, payload = request(server, path, body)
            if status != 200:
                violations.append(("status", status, payload[:200]))
                continue
            if valid_bodies is not None and payload not in valid_bodies:
                violations.append(("torn", payload[:200]))
            elif valid_bodies is None:
                try:
                    json.loads(payload)
                except json.JSONDecodeError:
                    violations.append(("undecodable", payload[:200]))

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return violations


def test_concurrent_queries_during_refresh_see_no_errors(server, campaign):
    """N threads on /query during refresh(): no 5xx, no torn responses."""
    store = server.store
    stop = threading.Event()

    def refresher():
        flip = False
        while not stop.is_set():
            write_json_atomic(
                campaign / REPORT_DIR / "front_seeds.json", DOC_B if flip else DOC_A
            )
            flip = not flip
            store.refresh()

    refresh_thread = threading.Thread(target=refresher)
    refresh_thread.start()
    try:
        violations = hammer(
            server, "/query", {"dataset": "seeds", "min_accuracy": 0.5}, 6, 30
        )
    finally:
        stop.set()
        refresh_thread.join()
    assert violations == []


def test_concurrent_front_reads_serve_only_whole_documents(server, campaign):
    """GET /fronts under rewrite: every body is one of the two snapshots."""
    path = campaign / REPORT_DIR / "front_seeds.json"
    write_json_atomic(path, DOC_A)
    raw_a = path.read_bytes()
    write_json_atomic(path, DOC_B)
    raw_b = path.read_bytes()
    stop = threading.Event()

    def rewriter():
        flip = False
        while not stop.is_set():
            write_json_atomic(path, DOC_A if flip else DOC_B)
            flip = not flip

    rewrite_thread = threading.Thread(target=rewriter)
    rewrite_thread.start()
    try:
        violations = hammer(
            server, "/fronts/seeds", None, 6, 30, valid_bodies={raw_a, raw_b}
        )
    finally:
        stop.set()
        rewrite_thread.join()
    assert violations == []


def test_refresh_during_traffic_keeps_metrics_consistent(server):
    hammer(server, "/query", {"dataset": "seeds"}, 4, 10)
    server.store.refresh()
    status, body = request(server, "/metrics")
    metrics = json.loads(body)
    assert metrics["requests"]["POST /query"] == 40
    assert metrics["responses"].get("5xx", 0) == 0


# -- request-body validation ---------------------------------------------------------


def raw_request(server, request_bytes):
    """Raw bytes on the wire → full raw response (reads until close)."""
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(request_bytes)
        data = b""
        while chunk := sock.recv(65536):
            data += chunk
    return data


def test_post_with_non_numeric_content_length_answers_400(server):
    data = raw_request(
        server,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: abc\r\n"
        b"Connection: close\r\n\r\n",
    )
    assert data.split(b" ", 2)[1] == b"400"
    assert json.loads(data.split(b"\r\n\r\n", 1)[1])["error"] == "invalid Content-Length"


def test_post_with_negative_content_length_answers_400(server):
    data = raw_request(
        server,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n"
        b"Connection: close\r\n\r\n",
    )
    assert data.split(b" ", 2)[1] == b"400"
    assert json.loads(data.split(b"\r\n\r\n", 1)[1])["error"] == "invalid Content-Length"


def test_post_over_body_cap_answers_413_and_closes_connection(server):
    """An honest huge Content-Length is refused before any body byte is read.

    The server never sends the body, so the only safe continuation is to
    drop the connection — ``raw_request`` reading to EOF without a
    ``Connection: close`` request header proves the server closed it.
    """
    data = raw_request(
        server,
        f"POST /query HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode(),
    )
    assert data.split(b" ", 2)[1] == b"413"
    document = json.loads(data.split(b"\r\n\r\n", 1)[1])
    assert document == {
        "error": "request body too large",
        "limit_bytes": MAX_BODY_BYTES,
    }


def test_post_at_body_cap_is_still_served(server):
    body = json.dumps({"dataset": "seeds"}).encode()
    padded = body[:-1] + b" " * (MAX_BODY_BYTES - len(body)) + b"}"
    assert len(padded) == MAX_BODY_BYTES
    req = urllib.request.Request(server.url + "/query", data=padded, method="POST")
    with urllib.request.urlopen(req, timeout=10) as resp:
        assert resp.status == 200


# -- miss-enqueue dedupe before disk -------------------------------------------------


def test_enqueue_dedupes_before_touching_the_spec(campaign):
    """A hot 404 costs a dict lookup, not a spec.json read, after the first miss."""
    enqueuer = MissEnqueuer(campaign)
    assert enqueuer.enqueue("cardio") == "cardio-ga-s0"
    # If repeat misses re-read the spec, deleting it would flip the answer
    # to None; the dedupe map must win before any disk I/O.
    (campaign / "spec.json").unlink()
    assert enqueuer.enqueue("cardio") == "cardio-ga-s0"


def test_enqueue_reads_spec_once_per_dataset(campaign, monkeypatch):
    reads = {"count": 0}
    real = MissEnqueuer._job_for

    def counting(self, dataset):
        reads["count"] += 1
        return real(self, dataset)

    monkeypatch.setattr(MissEnqueuer, "_job_for", counting)
    enqueuer = MissEnqueuer(campaign)
    for _ in range(5):
        assert enqueuer.enqueue("cardio") == "cardio-ga-s0"
    assert reads["count"] == 1


# -- metrics overflow honesty --------------------------------------------------------


def test_percentile_overflow_bucket_reports_inf_not_a_cap():
    """A latency beyond the last bucket must not masquerade as 10 s."""
    metrics = ServingMetrics()
    metrics.observe("GET /x", 200, 60.0)
    latency = metrics.snapshot()["latency"]
    assert latency["p50_ms"] == "inf"
    assert latency["p99_ms"] == "inf"
    json.dumps(metrics.snapshot())  # the document must stay valid JSON


def test_percentile_mixed_traffic_keeps_finite_p50_with_overflow_p99():
    metrics = ServingMetrics()
    for _ in range(50):
        metrics.observe("GET /x", 200, 0.001)
    metrics.observe("GET /x", 200, 30.0)
    latency = metrics.snapshot()["latency"]
    assert latency["p50_ms"] == 1.0
    assert latency["p99_ms"] == "inf"


# -- URL decoding of the dataset segment ---------------------------------------------


def test_fronts_route_resolves_percent_encoded_safe_name(server, campaign):
    status, body = request(server, "/fronts/se%65ds")
    assert status == 200
    assert body == (campaign / REPORT_DIR / "front_seeds.json").read_bytes()


def test_fronts_route_refuses_percent_encoded_traversal(server, campaign):
    """``%2e%2e%2f`` decodes to ``../`` — refused after decoding, not enqueued."""
    for evil in ("%2e%2e%2fsecret", "%2e%2e", "a%2fb"):
        status, body = request(server, f"/fronts/{evil}")
        assert status == 404
        assert json.loads(body)["enqueued_job"] is None
    assert not FabricLayout(campaign).queue_dir.exists()


# -- conditional requests ------------------------------------------------------------


def headed_request(server, path, body=None, headers=None):
    """``(status, body, response ETag)`` with request-header control."""
    url = server.url + path
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data, headers=dict(headers or {}), method="GET" if body is None else "POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read(), resp.headers.get("ETag")
    except urllib.error.HTTPError as error:
        return error.code, error.read(), error.headers.get("ETag")


def test_fronts_route_carries_etag_and_answers_304_on_match(server):
    status, body, etag = headed_request(server, "/fronts/seeds")
    assert status == 200 and etag is not None
    assert etag.startswith('"') and etag.endswith('"')
    status, body, etag_again = headed_request(
        server, "/fronts/seeds", headers={"If-None-Match": etag}
    )
    assert status == 304
    assert body == b""
    assert etag_again == etag


def test_etag_matches_weak_validators_lists_and_wildcard(server):
    _, _, etag = headed_request(server, "/fronts/seeds")
    for header in (f"W/{etag}", f'"miss", {etag}', "*"):
        status, body, _ = headed_request(
            server, "/fronts/seeds", headers={"If-None-Match": header}
        )
        assert status == 304, header
        assert body == b""


def test_etag_changes_when_the_front_document_changes(server, campaign):
    _, _, etag = headed_request(server, "/fronts/seeds")
    write_json_atomic(campaign / REPORT_DIR / "front_seeds.json", DOC_B)
    server.store.refresh()
    status, body, new_etag = headed_request(
        server, "/fronts/seeds", headers={"If-None-Match": etag}
    )
    assert status == 200 and body != b""
    assert new_etag != etag


def test_query_route_carries_etag_and_answers_304_on_match(server):
    status, body, etag = headed_request(server, "/query", body={"dataset": "seeds"})
    assert status == 200 and etag is not None
    status, body, _ = headed_request(
        server, "/query", body={"dataset": "seeds"}, headers={"If-None-Match": etag}
    )
    assert status == 304
    assert body == b""


def test_fronts_and_query_etags_agree_for_one_campaign(server):
    _, _, front_etag = headed_request(server, "/fronts/seeds")
    _, _, query_etag = headed_request(server, "/query", body={"dataset": "seeds"})
    assert front_etag == query_etag


# -- pagination ----------------------------------------------------------------------


def test_fronts_route_pagination_windows_rows(server, campaign):
    full = json.loads((campaign / REPORT_DIR / "front_seeds.json").read_bytes())
    status, body = request(server, "/fronts/seeds?offset=1&limit=1")
    assert status == 200
    document = json.loads(body)
    assert document == {
        "dataset": "seeds",
        "baseline": full["baseline"],
        "total_points": len(full["front"]),
        "offset": 1,
        "limit": 1,
        "front": full["front"][1:2],
    }


def test_fronts_route_offset_only_and_limit_only(server, campaign):
    full = json.loads((campaign / REPORT_DIR / "front_seeds.json").read_bytes())
    status, body = request(server, "/fronts/seeds?offset=1")
    assert status == 200
    assert json.loads(body)["front"] == full["front"][1:]
    status, body = request(server, "/fronts/seeds?limit=1")
    assert status == 200
    assert json.loads(body)["front"] == full["front"][:1]


def test_fronts_route_offset_past_the_end_returns_empty_page(server):
    status, body = request(server, "/fronts/seeds?offset=99")
    assert status == 200
    document = json.loads(body)
    assert document["front"] == [] and document["total_points"] == 2


def test_fronts_route_rejects_invalid_pagination(server):
    for query_string in ("offset=-1", "limit=0", "offset=abc", "page=2", "limit="):
        status, body = request(server, f"/fronts/seeds?{query_string}")
        assert status == 400, query_string
        assert json.loads(body)["error"] == "invalid pagination"


def test_query_route_offset_and_limit_window_ranked_points(server):
    _, body = request(server, "/query", {"dataset": "seeds", "include_dominated": True})
    full = json.loads(body)
    assert full["returned"] == 2
    _, body = request(
        server,
        "/query",
        {"dataset": "seeds", "include_dominated": True, "offset": 1, "limit": 1},
    )
    page = json.loads(body)
    assert page["points"] == full["points"][1:2]
    assert page["returned"] == 1
    # matched counts constraint survivors, not the window.
    assert page["matched"] == full["matched"]
    assert page["query"]["offset"] == 1 and page["query"]["limit"] == 1


def test_query_route_window_applies_after_top_k(server):
    _, body = request(server, "/query", {"dataset": "seeds"})
    full = json.loads(body)
    _, body = request(
        server, "/query", {"dataset": "seeds", "top_k": 1, "offset": 1}
    )
    page = json.loads(body)
    assert page["points"] == []  # top_k=1 leaves nothing past offset 1
    assert page["matched"] == full["matched"]
