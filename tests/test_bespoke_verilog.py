"""Tests for the structural Verilog export."""

import numpy as np
import pytest

from repro.bespoke import BespokeConfig, count_verilog_adders, export_verilog
from repro.bespoke.verilog import _csd_expression, _identifier
from repro.nn import MLP, build_mlp
from repro.pruning import prune_by_magnitude
from repro.quantization import attach_quantizers


@pytest.fixture
def model():
    return build_mlp(5, (4,), 3, seed=0)


class TestCSDExpression:
    @pytest.mark.parametrize("coefficient", [1, 2, 3, 5, 7, 12, 100, -3, -17])
    def test_expression_evaluates_to_product(self, coefficient):
        expression = _csd_expression("x", coefficient)
        # Evaluate the expression in Python: <<< behaves like << for ints.
        value = eval(expression.replace("<<<", "<<"), {"x": 13})
        assert value == 13 * coefficient

    def test_zero_coefficient(self):
        assert _csd_expression("x", 0) == "0"

    def test_identifier_sanitization(self):
        assert _identifier("my module-1") == "my_module_1"
        assert _identifier("123abc").startswith("m_")
        assert _identifier("") .startswith("m_")


class TestExportStructure:
    def test_module_header_and_ports(self, model):
        source = export_verilog(model, BespokeConfig(input_bits=4, weight_bits=6), "toy")
        assert "module toy (" in source
        assert "input  wire [19:0] features," in source            # 5 inputs x 4 bits
        assert "output wire [1:0] predicted_class" in source       # 3 classes -> 2 bits
        assert source.strip().endswith("endmodule")

    def test_requires_dense_layers(self):
        with pytest.raises(ValueError):
            export_verilog(MLP([]))

    def test_invalid_accumulator_width(self, model):
        with pytest.raises(ValueError):
            export_verilog(model, accumulator_width=4)

    def test_one_sum_wire_per_neuron(self, model):
        source = export_verilog(model)
        assert source.count("wire signed [31:0] sum_0_") == 4
        assert source.count("wire signed [31:0] sum_1_") == 3

    def test_relu_only_on_hidden_layer(self, model):
        source = export_verilog(model)
        hidden_relu = [line for line in source.splitlines() if "? 32'sd0 :" in line]
        assert len(hidden_relu) == 4  # one per hidden neuron, none on the output layer

    def test_argmax_chain_length(self, model):
        source = export_verilog(model)
        assert source.count("best_value_") >= 3
        assert "assign predicted_class = best_index_2;" in source

    def test_topology_comment(self, model):
        source = export_verilog(model, BespokeConfig(weight_bits=5))
        assert "topology: 5-4-3" in source
        assert "weight_bits=[5, 5]" in source


class TestMinimizationReflectedInNetlist:
    def test_pruning_removes_terms(self, model):
        dense_source = export_verilog(model)
        pruned = model.clone()
        prune_by_magnitude(pruned, 0.6)
        pruned_source = export_verilog(pruned)
        assert count_verilog_adders(pruned_source) < count_verilog_adders(dense_source)

    def test_lower_precision_reduces_adders(self, model):
        wide = export_verilog(model, BespokeConfig(weight_bits=8))
        narrow_model = model.clone()
        attach_quantizers(narrow_model, 2)
        narrow = export_verilog(narrow_model, BespokeConfig(weight_bits=2))
        assert count_verilog_adders(narrow) < count_verilog_adders(wide)

    def test_zero_weight_produces_no_reference(self):
        mlp = build_mlp(3, (2,), 2, seed=0)
        layer = mlp.dense_layers[0]
        layer.weights[0, :] = 0.0
        mask = np.ones_like(layer.weights)
        mask[0, :] = 0.0
        layer.mask = mask
        source = export_verilog(mlp)
        # act_0_0 (the zeroed input) is declared but never used in a sum.
        sum_lines = [line for line in source.splitlines() if "sum_0_" in line]
        assert all("act_0_0" not in line for line in sum_lines)


class TestNumericalConsistencyWithSimulator:
    def test_first_layer_sums_match_simulator(self, seeds_model, seeds_data):
        """Evaluate the generated layer-0 expressions in Python and compare
        against the fixed-point simulator's integer accumulators."""
        from repro.bespoke import FixedPointSimulator

        config = BespokeConfig(input_bits=4, weight_bits=6)
        simulator = FixedPointSimulator(seeds_model, config)
        source = export_verilog(seeds_model, config)

        sample = seeds_data.test.features[0]
        levels = simulator.quantize_inputs(sample.reshape(1, -1))[0]
        namespace = {f"act_0_{i}": int(levels[i]) for i in range(len(levels))}

        expected = levels @ simulator.layers[0].weights + simulator.layers[0].bias
        for line in source.splitlines():
            line = line.strip()
            if line.startswith("wire signed [31:0] sum_0_"):
                name, expression = line[len("wire signed [31:0] "):].rstrip(";").split(" = ", 1)
                neuron = int(name.split("_")[-1])
                value = eval(expression.replace("<<<", "<<"), dict(namespace))
                assert value == int(expected[neuron])
