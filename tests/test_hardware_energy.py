"""Tests for the energy / battery-lifetime analysis (repro.hardware.energy)."""

import pytest

from repro.bespoke import BespokeConfig, synthesize
from repro.hardware.energy import (
    DEFAULT_PRINTED_BATTERY_MWH,
    battery_life_comparison,
    energy_gain,
    energy_per_inference,
    energy_profile,
    max_inference_rate,
    power_breakdown,
)
from repro.nn import build_mlp


@pytest.fixture(scope="module")
def reports():
    model = build_mlp(6, (5,), 3, seed=0)
    baseline = synthesize(model, BespokeConfig(input_bits=4, weight_bits=8))
    minimized = synthesize(model, BespokeConfig(input_bits=4, weight_bits=3))
    return baseline, minimized


class TestEnergyPerInference:
    def test_energy_formula(self, reports):
        baseline, _ = reports
        assert energy_per_inference(baseline) == pytest.approx(
            baseline.power * baseline.delay / 1e6
        )

    def test_minimized_design_uses_less_energy(self, reports):
        baseline, minimized = reports
        assert energy_per_inference(minimized) < energy_per_inference(baseline)

    def test_max_inference_rate(self, reports):
        baseline, _ = reports
        rate = max_inference_rate(baseline)
        assert rate == pytest.approx(1e6 / baseline.delay)


class TestEnergyProfile:
    def test_profile_fields_consistent(self, reports):
        baseline, _ = reports
        profile = energy_profile(baseline, inferences_per_second=1.0)
        assert 0.0 < profile.duty_cycle < 1.0
        assert profile.standby_power < baseline.power
        assert profile.average_power <= baseline.power
        assert profile.average_power >= profile.standby_power
        assert profile.battery_life_hours > 0
        assert profile.inferences_per_second == 1.0

    def test_lower_rate_longer_battery_life(self, reports):
        baseline, _ = reports
        slow = energy_profile(baseline, inferences_per_second=0.1)
        fast = energy_profile(baseline, inferences_per_second=5.0)
        assert slow.battery_life_hours > fast.battery_life_hours

    def test_bigger_battery_longer_life(self, reports):
        baseline, _ = reports
        small = energy_profile(baseline, battery_mwh=DEFAULT_PRINTED_BATTERY_MWH)
        large = energy_profile(baseline, battery_mwh=10 * DEFAULT_PRINTED_BATTERY_MWH)
        assert large.battery_life_hours == pytest.approx(10 * small.battery_life_hours, rel=1e-6)

    def test_unreachable_rate_rejected(self, reports):
        baseline, _ = reports
        too_fast = 2.0 * max_inference_rate(baseline)
        with pytest.raises(ValueError):
            energy_profile(baseline, inferences_per_second=too_fast)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"inferences_per_second": 0.0},
            {"battery_mwh": 0.0},
            {"standby_fraction": 1.5},
        ],
    )
    def test_invalid_arguments(self, reports, kwargs):
        baseline, _ = reports
        with pytest.raises(ValueError):
            energy_profile(baseline, **kwargs)

    def test_as_dict_keys(self, reports):
        baseline, _ = reports
        data = energy_profile(baseline).as_dict()
        assert "energy_per_inference_uj" in data
        assert "battery_life_hours" in data


class TestComparisons:
    def test_power_breakdown_sums_to_one(self, reports):
        baseline, _ = reports
        breakdown = power_breakdown(baseline)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_energy_gain_greater_than_one_for_minimized(self, reports):
        baseline, minimized = reports
        gains = energy_gain(minimized, baseline)
        assert gains["power_gain"] > 1.0
        assert gains["energy_gain"] > 1.0
        assert gains["speedup"] >= 1.0

    def test_energy_gain_identity(self, reports):
        baseline, _ = reports
        gains = energy_gain(baseline, baseline)
        assert gains["power_gain"] == pytest.approx(1.0)
        assert gains["energy_gain"] == pytest.approx(1.0)

    def test_battery_life_comparison(self, reports):
        baseline, minimized = reports
        comparison = battery_life_comparison(minimized, baseline, inferences_per_second=0.5)
        assert comparison["lifetime_gain"] > 1.0
        assert comparison["minimized_hours"] > comparison["baseline_hours"]
