"""Property tests: vectorized NSGA-II core == the historical loop implementations.

The vectorized :func:`fast_non_dominated_sort` and :func:`crowding_distance`
must reproduce the reference loops *exactly* — same fronts in the same order
(the order matters: crowding ties inside a front are broken by stable-sort
position) and bit-identical distances — including degenerate fronts with
duplicated objective vectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.nsga2 import (
    crowding_distance,
    crowding_distance_reference,
    fast_non_dominated_sort,
    fast_non_dominated_sort_reference,
    nsga2_rank,
    select_survivors,
    tournament_select,
)


def _random_front(rng: np.random.Generator, trial: int) -> np.ndarray:
    n = int(rng.integers(1, 40))
    m = int(rng.integers(1, 4))
    if trial % 2:
        # Tiny discrete alphabet: lots of exact duplicates and ties.
        matrix = rng.integers(0, 4, size=(n, m)).astype(np.float64)
    else:
        matrix = rng.normal(size=(n, m))
    if n > 3:
        matrix[1] = matrix[0]
        matrix[n // 2] = matrix[0]
    return matrix


class TestSortEquality:
    def test_matches_reference_on_random_fronts(self, rng):
        for trial in range(150):
            objectives = _random_front(rng, trial).tolist()
            assert fast_non_dominated_sort(objectives) == (
                fast_non_dominated_sort_reference(objectives)
            ), objectives

    def test_all_duplicates_single_front(self):
        objectives = [[1.0, 2.0]] * 7
        fronts = fast_non_dominated_sort(objectives)
        assert fronts == [[0, 1, 2, 3, 4, 5, 6]]
        assert fronts == fast_non_dominated_sort_reference(objectives)

    def test_totally_ordered_chain(self):
        objectives = [[float(i), float(i)] for i in range(6)]
        fronts = fast_non_dominated_sort(objectives)
        assert fronts == [[0], [1], [2], [3], [4], [5]]

    def test_empty(self):
        assert fast_non_dominated_sort([]) == []

    def test_rejects_ragged_objectives(self):
        with pytest.raises(ValueError):
            fast_non_dominated_sort([[1.0, 2.0], [1.0]])


class TestCrowdingEquality:
    def test_bitwise_equal_on_random_fronts(self, rng):
        for trial in range(150):
            objectives = _random_front(rng, trial).tolist()
            fast = crowding_distance(objectives)
            reference = crowding_distance_reference(objectives)
            assert fast.tobytes() == reference.tobytes(), objectives

    def test_duplicate_objective_ties(self):
        # Stable argsort tie-breaking must match the reference exactly.
        objectives = [[1.0, 5.0], [1.0, 5.0], [0.0, 7.0], [1.0, 5.0], [2.0, 3.0]]
        fast = crowding_distance(objectives)
        reference = crowding_distance_reference(objectives)
        assert fast.tobytes() == reference.tobytes()

    def test_zero_span_objective(self):
        objectives = [[1.0, 0.1], [1.0, 0.5], [1.0, 0.9]]
        fast = crowding_distance(objectives)
        assert fast.tobytes() == crowding_distance_reference(objectives).tobytes()

    def test_empty(self):
        assert crowding_distance([]).size == 0


class TestRankingAndSelection:
    def test_nsga2_rank_consistent(self, rng):
        for trial in range(40):
            objectives = _random_front(rng, trial).tolist()
            keys = nsga2_rank(objectives)
            fronts = fast_non_dominated_sort_reference(objectives)
            for front_index, front in enumerate(fronts):
                distances = crowding_distance_reference(
                    [objectives[i] for i in front]
                )
                for position, solution in enumerate(front):
                    assert keys[solution] == (
                        front_index,
                        -float(distances[position]),
                    )

    def test_select_survivors_unchanged(self, rng):
        for trial in range(20):
            objectives = _random_front(rng, trial).tolist()
            n_survivors = max(1, len(objectives) // 2)
            survivors = select_survivors(objectives, n_survivors)
            keys = nsga2_rank(objectives)
            expected = sorted(range(len(objectives)), key=lambda i: keys[i])
            assert survivors == expected[:n_survivors]

    def test_tournament_precomputed_keys_identical(self, rng):
        """Passing precomputed keys must not change the selected index or
        the RNG stream."""
        objectives = _random_front(rng, 0).tolist()
        keys = nsga2_rank(objectives)
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        for _ in range(50):
            assert tournament_select(objectives, rng_a) == tournament_select(
                objectives, rng_b, keys=keys
            )
        # Streams stayed in lockstep.
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)

    def test_tournament_validates_keys_length(self, rng):
        objectives = [[1.0, 2.0], [2.0, 1.0]]
        with pytest.raises(ValueError):
            tournament_select(objectives, np.random.default_rng(0), keys=[(0, 0.0)])
