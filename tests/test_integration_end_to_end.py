"""End-to-end integration tests: the full story on one small classifier.

These tests exercise the complete reproduction path in one place — train,
minimize with all three techniques, synthesize, verify the circuit
bit-accurately, check energy and reliability, and export artefacts — and
assert the cross-module invariants that individual unit tests cannot see
(e.g. the area model, the Verilog netlist and the simulator must all describe
the same circuit).
"""

import pytest

from repro.analysis import export_sweep, sweep_plot
from repro.bespoke import (
    BespokeConfig,
    FixedPointSimulator,
    count_verilog_adders,
    export_verilog,
    synthesize,
)
from repro.clustering import cluster_and_finetune
from repro.core import best_area_gain_at_loss, pareto_front
from repro.hardware import energy_gain
from repro.pruning import prune_by_magnitude
from repro.quantization import QATConfig, quantize_aware_train
from repro.reliability import FaultInjectionConfig, run_fault_injection


@pytest.fixture(scope="module")
def prepared(prepared_pipeline):
    return prepared_pipeline.prepare()


@pytest.fixture(scope="module")
def minimized_design(prepared):
    """A combined minimized design: 40 % sparsity, 3 clusters, 3-bit QAT."""
    model = prepared.baseline_model.clone()
    prune_by_magnitude(model, 0.4)
    cluster_and_finetune(model, prepared.data, 3, epochs=5, seed=0)
    quantize_aware_train(model, prepared.data, QATConfig(weight_bits=3, epochs=8), seed=0)
    config = BespokeConfig(input_bits=4, weight_bits=3)
    report = synthesize(model, config=config, name="seeds_combined_e2e")
    return model, config, report


class TestCombinedMinimizationStory:
    def test_area_shrinks_while_accuracy_holds(self, prepared, minimized_design):
        model, _, report = minimized_design
        accuracy = model.evaluate_accuracy(
            prepared.data.test.features, prepared.data.test.labels
        )
        assert report.area < prepared.baseline_point.area * 0.6
        assert accuracy >= prepared.baseline_accuracy - 0.12

    def test_all_three_mechanisms_visible_in_hardware(self, prepared, minimized_design):
        model, _, report = minimized_design
        baseline_report = prepared.baseline_point.report
        # Pruning: fewer multipliers than connections; clustering/sharing: the
        # shared-product count is non-zero; quantization: smaller area per mult.
        assert report.n_multipliers < baseline_report.n_multipliers
        assert report.n_shared_products > 0
        assert model.sparsity() >= 0.3

    def test_power_and_energy_follow_area(self, prepared, minimized_design):
        _, _, report = minimized_design
        gains = energy_gain(report, prepared.baseline_point.report)
        assert gains["power_gain"] > 1.3
        assert gains["energy_gain"] > 1.3

    def test_circuit_is_functionally_the_model(self, prepared, minimized_design):
        model, config, _ = minimized_design
        simulator = FixedPointSimulator(model, config)
        agreement = simulator.agreement_with_model(model, prepared.data.test.features)
        assert agreement >= 0.95

    def test_verilog_matches_area_model_trend(self, prepared, minimized_design):
        model, config, report = minimized_design
        baseline_source = export_verilog(
            prepared.baseline_model, BespokeConfig(input_bits=4, weight_bits=8)
        )
        minimized_source = export_verilog(model, config)
        # The structural netlist must shrink in the same direction as the
        # analytical area model.
        assert count_verilog_adders(minimized_source) < count_verilog_adders(baseline_source)
        assert report.area < prepared.baseline_point.area

    def test_minimized_design_survives_defects(self, prepared, minimized_design):
        model, _, _ = minimized_design
        result = run_fault_injection(
            model,
            prepared.data.test.features,
            prepared.data.test.labels,
            FaultInjectionConfig(fault_rate=0.03, n_trials=5, seed=0),
        )
        assert result.mean_accuracy >= result.fault_free_accuracy - 0.15


class TestSweepToArtefacts:
    def test_sweep_export_and_plot_roundtrip(self, prepared_pipeline, tmp_path):
        sweep = prepared_pipeline.run(("quantization",))
        front = pareto_front(sweep.points)
        assert front
        best = best_area_gain_at_loss(sweep.points, sweep.baseline, 0.05)
        assert best is None or best.area_gain >= 1.0

        paths = export_sweep(sweep, tmp_path)
        assert all(path.exists() for path in paths.values())
        figure = sweep_plot(sweep)
        assert "q" in figure and "B" in figure

    def test_quantized_points_agree_between_accuracy_and_circuit(self, prepared_pipeline):
        """The accuracy reported by a sweep point must be reproducible by
        simulating the corresponding circuit configuration."""
        prepared = prepared_pipeline.prepare()
        points = prepared_pipeline.run_technique("quantization")
        # Rebuild the most aggressive configuration and cross-check.
        lowest = min(points, key=lambda p: p.parameters["weight_bits"])
        model = prepared.baseline_model.clone()
        quantize_aware_train(
            model,
            prepared.data,
            QATConfig(weight_bits=int(lowest.parameters["weight_bits"]),
                      epochs=prepared.config.finetune_epochs),
            seed=prepared.config.seed,
        )
        simulator = FixedPointSimulator(
            model,
            BespokeConfig(
                input_bits=prepared.config.input_bits,
                weight_bits=int(lowest.parameters["weight_bits"]),
            ),
        )
        circuit_accuracy = simulator.evaluate_accuracy(
            prepared.data.test.features, prepared.data.test.labels
        )
        assert circuit_accuracy == pytest.approx(lowest.accuracy, abs=0.08)
