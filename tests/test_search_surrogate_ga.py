"""Surrogate-assisted GA integration tests.

The headline guarantee is the golden A/B: with every surrogate knob left
off, the GA's serialized fronts are byte-identical to the pinned
``tests/data/surrogate_off_front_golden.json`` captured before the
surrogate subsystem existed. The remaining tests cover the surrogate-on
path: fewer real evaluations, determinism, measured-points-only fronts,
successive halving, knob inheritance and spec/CLI wiring.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import SearchSpec, evaluation_context_key
from repro.cli import build_parser
from repro.core import MinimizationPipeline, PipelineConfig
from repro.search import GAConfig, HardwareAwareGA

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "surrogate_off_front_golden.json"


def golden_pipeline_config() -> PipelineConfig:
    """Must match tests/data/capture_surrogate_golden.py exactly."""
    return PipelineConfig(
        dataset="seeds", train_epochs=5, n_samples=150, finetune_epochs=2
    )


def golden_ga_config(robust: bool = False, **overrides) -> GAConfig:
    knobs = dict(population_size=6, n_generations=2, finetune_epochs=2, seed=0)
    if robust:
        knobs.update(fault_rate=0.05, n_fault_trials=4)
    knobs.update(overrides)
    return GAConfig(**knobs)


@pytest.fixture(scope="module")
def golden_prepared():
    return MinimizationPipeline(golden_pipeline_config()).prepare()


def front_document(prepared, config: GAConfig) -> dict:
    result = HardwareAwareGA(prepared, config=config).run()
    return {
        "baseline": prepared.baseline_point.as_dict(),
        "front": [point.as_dict() for point in result.front],
        "n_evaluations": result.n_evaluations,
    }


def serialize(document: dict) -> str:
    return json.dumps(document, indent=2, sort_keys=True)


class TestSurrogateOffGolden:
    """Surrogate off => byte-identical behavior to the pre-surrogate GA."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_two_objective_front_byte_identical(self, golden_prepared, golden):
        document = front_document(golden_prepared, golden_ga_config(robust=False))
        assert serialize(document) == serialize(golden["two_objective"])

    def test_three_objective_front_byte_identical(self, golden_prepared, golden):
        document = front_document(golden_prepared, golden_ga_config(robust=True))
        assert serialize(document) == serialize(golden["three_objective"])

    def test_off_run_reports_no_surrogate_stats(self, golden_prepared):
        result = HardwareAwareGA(
            golden_prepared, config=golden_ga_config()
        ).run()
        assert result.n_partial_evaluations == 0
        for stats in result.generations:
            assert "surrogate_fits" not in stats
            assert "partial_evaluations" not in stats


class TestSurrogateOnGA:
    def _run(self, prepared, **overrides):
        config = golden_ga_config(surrogate="ridge", **overrides)
        return HardwareAwareGA(prepared, config=config).run()

    def test_saves_real_evaluations(self, golden_prepared):
        off = HardwareAwareGA(golden_prepared, config=golden_ga_config()).run()
        on = self._run(golden_prepared, n_generations=3)
        # Off: pop + ~pop offspring/gen. On: pop + prefiltered fraction/gen.
        per_generation_off = (off.n_evaluations - 6) / 2
        per_generation_on = (on.n_evaluations - 6) / 3
        assert per_generation_on < per_generation_off

    def test_deterministic(self, golden_prepared):
        first = self._run(golden_prepared)
        second = self._run(golden_prepared)
        assert serialize([p.as_dict() for p in first.front]) == serialize(
            [p.as_dict() for p in second.front]
        )
        assert first.n_evaluations == second.n_evaluations

    def test_front_contains_only_measured_points(self, golden_prepared):
        result = self._run(golden_prepared)
        measured = {serialize(p.as_dict()) for p in result.all_points}
        assert all(serialize(p.as_dict()) in measured for p in result.front)

    def test_generation_stats_carry_surrogate_counters(self, golden_prepared):
        result = self._run(golden_prepared)
        assert result.generations
        for stats in result.generations:
            assert "offspring_evaluated" in stats
            assert "surrogate_fits" in stats
            assert "partial_evaluations" in stats
        assert result.n_partial_evaluations == 0  # no halving configured

    def test_halving_runs_partial_evaluations(self, golden_prepared):
        result = self._run(golden_prepared, halving_budgets=(1,))
        assert result.n_partial_evaluations > 0
        again = self._run(golden_prepared, halving_budgets=(1,))
        assert result.n_partial_evaluations == again.n_partial_evaluations
        assert serialize([p.as_dict() for p in result.front]) == serialize(
            [p.as_dict() for p in again.front]
        )

    def test_mlp_surrogate_runs(self, golden_prepared):
        result = HardwareAwareGA(
            golden_prepared,
            config=golden_ga_config(surrogate="mlp", surrogate_candidates=2),
        ).run()
        assert result.front
        assert result.generations[-1]["surrogate_fits"] >= 0


class TestKnobValidationAndInheritance:
    def test_ga_config_rejects_unknown_surrogate(self):
        with pytest.raises(ValueError, match="surrogate"):
            GAConfig(surrogate="forest")

    def test_ga_config_rejects_bad_candidates(self):
        with pytest.raises(ValueError, match="surrogate_candidates"):
            GAConfig(surrogate_candidates=0)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_ga_config_rejects_bad_prefilter(self, fraction):
        with pytest.raises(ValueError, match="surrogate_prefilter"):
            GAConfig(surrogate_prefilter=fraction)

    @pytest.mark.parametrize("budgets", [(2, 1), (1, 1), (0,), (-1, 2)])
    def test_ga_config_rejects_bad_halving_budgets(self, budgets):
        with pytest.raises(ValueError, match="halving_budgets"):
            GAConfig(halving_budgets=budgets)

    def test_pipeline_config_mirrors_validation(self):
        with pytest.raises(ValueError, match="surrogate"):
            PipelineConfig(dataset="seeds", surrogate="forest")
        with pytest.raises(ValueError, match="halving_budgets"):
            PipelineConfig(dataset="seeds", halving_budgets=(3, 2))

    def test_ga_inherits_pipeline_surrogate_knobs(self, golden_prepared):
        config = PipelineConfig(
            dataset="seeds",
            train_epochs=5,
            n_samples=150,
            finetune_epochs=2,
            surrogate="ridge",
            surrogate_candidates=2,
            surrogate_prefilter=0.5,
            halving_budgets=(1,),
        )
        prepared = MinimizationPipeline(config).prepare()
        ga = HardwareAwareGA(prepared, config=golden_ga_config())
        assert ga.surrogate_model == "ridge"
        assert ga.surrogate_candidates == 2
        assert ga.surrogate_prefilter == 0.5
        assert ga.halving_budgets == (1,)
        assert ga.assistant is not None

    def test_ga_config_overrides_pipeline(self, golden_prepared):
        ga = HardwareAwareGA(
            golden_prepared,
            config=golden_ga_config(surrogate="mlp", surrogate_candidates=3),
        )
        assert ga.surrogate_model == "mlp"
        assert ga.surrogate_candidates == 3

    def test_off_by_default(self, golden_prepared):
        ga = HardwareAwareGA(golden_prepared, config=golden_ga_config())
        assert ga.surrogate_model is None
        assert ga.assistant is None


class TestContextKeySharing:
    """Surrogate knobs steer the search, not evaluations — keys must match."""

    def test_context_key_ignores_surrogate_knobs(self):
        plain = PipelineConfig(dataset="seeds", train_epochs=5)
        assisted = PipelineConfig(
            dataset="seeds",
            train_epochs=5,
            surrogate="ridge",
            surrogate_candidates=8,
            surrogate_prefilter=0.5,
            halving_budgets=(1, 3),
        )
        key = evaluation_context_key(plain, settings=None, seed=0)
        assert key == evaluation_context_key(assisted, settings=None, seed=0)
        # A knob that does change evaluation results still changes the key.
        retrained = PipelineConfig(dataset="seeds", train_epochs=6)
        assert key != evaluation_context_key(retrained, settings=None, seed=0)


class TestCampaignSpecWiring:
    def test_ga_spec_accepts_surrogate_params(self):
        spec = SearchSpec.from_dict(
            {
                "algorithm": "ga",
                "surrogate": "ridge",
                "surrogate_candidates": 2,
                "surrogate_prefilter": 0.5,
                "halving_budgets": [1, 2],
            }
        )
        params = spec.param_dict()
        assert params["surrogate"] == "ridge"
        config = GAConfig(**params)
        assert config.halving_budgets == (1, 2)

    def test_non_ga_spec_rejects_surrogate_params(self):
        with pytest.raises(ValueError, match="surrogate"):
            SearchSpec.from_dict({"algorithm": "random", "surrogate": "ridge"})


class TestCLIWiring:
    def test_figure2_accepts_surrogate_flags(self):
        args = build_parser().parse_args(
            [
                "figure2",
                "--surrogate",
                "ridge",
                "--surrogate-candidates",
                "3",
                "--surrogate-prefilter",
                "0.5",
                "--halving-budgets",
                "1,3",
            ]
        )
        assert args.surrogate == "ridge"
        assert args.surrogate_candidates == 3
        assert args.surrogate_prefilter == 0.5
        assert args.halving_budgets == (1, 3)

    def test_surrogate_off_by_default(self):
        args = build_parser().parse_args(["figure2"])
        assert args.surrogate is None
        assert args.halving_budgets is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["figure2", "--surrogate", "forest"],
            ["figure2", "--surrogate-prefilter", "0"],
            ["figure2", "--surrogate-prefilter", "1.5"],
            ["figure2", "--surrogate-candidates", "0"],
            ["figure2", "--halving-budgets", "3,1"],
            ["figure2", "--halving-budgets", "0"],
            ["figure2", "--halving-budgets", "nope"],
        ],
    )
    def test_rejects_invalid_surrogate_flags(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
