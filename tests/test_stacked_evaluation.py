"""Golden tests of the stacked population evaluation path and its plumbing.

``evaluate_genomes_stacked`` must produce byte-identical design points to
the per-genome ``evaluate_genome`` loop; the engine routing (stacked flag,
LRU cache bound, parallel chunking) must preserve that identity end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bespoke import (
    BespokeConfig,
    FixedPointSimulator,
    population_accuracy,
    simulate_population,
)
from repro.core.results import DesignPoint
from repro.pruning.magnitude import prune_by_magnitude
from repro.quantization.qat import attach_quantizers
from repro.search import (
    EvaluationCache,
    EvaluationSettings,
    GAConfig,
    Genome,
    GenomeSpace,
    HardwareAwareGA,
    SerialEvaluator,
    evaluate_genome,
    evaluate_genomes_stacked,
    genome_seed,
)
from repro.search.parallel import _chunk_bounds


def _population_genomes(n=6, seed=0):
    space = GenomeSpace(n_layers=2)
    rng = np.random.default_rng(seed)
    genomes = space.seed_genomes()
    while len(genomes) < n:
        genomes.append(space.random_genome(rng))
    return genomes[:n]


def _point_signature(point: DesignPoint):
    return (
        point.accuracy,
        point.area,
        point.power,
        point.delay,
        point.technique,
        point.parameters,
    )


class TestStackedEvaluationGolden:
    @pytest.mark.parametrize("simulate_accuracy", [False, True])
    def test_stacked_equals_serial_loop(self, prepared_pipeline, simulate_accuracy):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(
            finetune_epochs=2, simulate_accuracy=simulate_accuracy
        )
        genomes = _population_genomes()
        seeds = [genome_seed(0, genome) for genome in genomes]
        serial = [
            evaluate_genome(genome, prepared, settings, seed=seed)
            for genome, seed in zip(genomes, seeds)
        ]
        stacked = evaluate_genomes_stacked(genomes, prepared, settings, seeds)
        assert [_point_signature(p) for p in serial] == [
            _point_signature(p) for p in stacked
        ]

    def test_zero_epoch_settings_fall_back(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=0)
        genomes = _population_genomes(n=3)
        seeds = [genome_seed(0, genome) for genome in genomes]
        stacked = evaluate_genomes_stacked(genomes, prepared, settings, seeds)
        serial = [
            evaluate_genome(genome, prepared, settings, seed=seed)
            for genome, seed in zip(genomes, seeds)
        ]
        assert [_point_signature(p) for p in serial] == [
            _point_signature(p) for p in stacked
        ]

    def test_unstackable_population_finishes_on_built_models(
        self, prepared_pipeline, monkeypatch
    ):
        """When stacking is rejected after the preamble, the fallback reuses
        the already-built models and still matches the serial loop."""
        import repro.search.objectives as objectives_module

        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=2)
        genomes = _population_genomes(n=3)
        seeds = [genome_seed(0, genome) for genome in genomes]
        serial = [
            evaluate_genome(genome, prepared, settings, seed=seed)
            for genome, seed in zip(genomes, seeds)
        ]
        monkeypatch.setattr(objectives_module, "supports_stacking", lambda models: False)
        fallback = evaluate_genomes_stacked(genomes, prepared, settings, seeds)
        assert [_point_signature(p) for p in serial] == [
            _point_signature(p) for p in fallback
        ]

    def test_seed_count_mismatch_rejected(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        with pytest.raises(ValueError):
            evaluate_genomes_stacked(
                _population_genomes(n=3), prepared, EvaluationSettings(), seeds=[1]
            )


class TestEngineRouting:
    def test_stacked_engine_matches_plain(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=2)
        genomes = _population_genomes()
        plain = SerialEvaluator(prepared, settings, seed=0)
        stacked = SerialEvaluator(prepared, settings, seed=0, stacked=True)
        plain_points = plain.evaluate_population(genomes)
        stacked_points = stacked.evaluate_population(genomes)
        assert [_point_signature(p) for p in plain_points] == [
            _point_signature(p) for p in stacked_points
        ]
        assert plain.n_evaluations == stacked.n_evaluations
        # Second submission: everything cached, no new evaluations.
        stacked.evaluate_population(genomes)
        assert stacked.n_evaluations == len(genomes)

    def test_pipeline_combined_search(self, prepared_pipeline):
        """MinimizationPipeline.combined_search == running the GA directly."""
        config = GAConfig(
            population_size=4, n_generations=1, finetune_epochs=1, seed=0
        )
        via_pipeline = prepared_pipeline.combined_search(ga_config=config)
        direct = HardwareAwareGA(
            prepared_pipeline.prepare(), config=config
        ).run()
        assert [_point_signature(p) for p in via_pipeline.front] == [
            _point_signature(p) for p in direct.front
        ]
        assert via_pipeline.n_evaluations == direct.n_evaluations

    def test_bounded_cache_preserves_search_results(self, prepared_pipeline):
        """A tiny LRU cache may re-evaluate genomes but must not change the
        front or the all-points history (the GA keeps its own archive)."""
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=1)

        def run(cache_size):
            config = GAConfig(
                population_size=4, n_generations=2, seed=0, cache_size=cache_size
            )
            return HardwareAwareGA(prepared, config=config, settings=settings).run()

        unbounded = run(None)
        bounded = run(2)
        # The Pareto archive makes the front exact regardless of evictions.
        assert [_point_signature(p) for p in bounded.front] == [
            _point_signature(p) for p in unbounded.front
        ]
        # all_points reflects the surviving cache entries: a subset (by
        # signature) of the complete unbounded history, bounded in size.
        unbounded_signatures = {repr(_point_signature(p)) for p in unbounded.all_points}
        assert all(
            repr(_point_signature(p)) in unbounded_signatures
            for p in bounded.all_points
        )
        assert len(bounded.all_points) <= 2
        # The bound was actually exercised: evictions forced re-evaluations.
        assert bounded.n_evaluations >= unbounded.n_evaluations

    def test_ga_stacked_and_loop_fronts_identical(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=2)

        def run(stacked):
            config = GAConfig(
                population_size=4, n_generations=2, seed=0, stacked=stacked
            )
            return HardwareAwareGA(prepared, config=config, settings=settings).run()

        loop_result = run(False)
        stacked_result = run(True)
        assert [_point_signature(p) for p in loop_result.front] == [
            _point_signature(p) for p in stacked_result.front
        ]
        assert loop_result.n_evaluations == stacked_result.n_evaluations
        assert [p.accuracy for p in loop_result.all_points] == [
            p.accuracy for p in stacked_result.all_points
        ]


class TestParallelStackedAgreement:
    def test_chunked_pool_matches_serial_stacked(self, prepared_pipeline):
        """Serial, stacked, and parallel-stacked engines agree byte for byte."""
        from repro.search import ParallelEvaluator

        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=2)
        genomes = _population_genomes(n=5)
        serial = SerialEvaluator(prepared, settings, seed=0)
        expected = serial.evaluate_population(genomes)
        parallel = ParallelEvaluator(
            prepared, settings, seed=0, n_workers=2, stacked=True
        )
        try:
            points = parallel.evaluate_population(genomes)
        finally:
            parallel.close()
        assert [_point_signature(p) for p in points] == [
            _point_signature(p) for p in expected
        ]


class TestChunkBounds:
    def test_partition_properties(self):
        for n_items in range(1, 40):
            for n_chunks in range(1, 10):
                bounds = _chunk_bounds(n_items, n_chunks)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_items
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start
                assert all(stop > start for start, stop in bounds)
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1


class TestEvaluationCacheLRU:
    @staticmethod
    def _genome(bits: int) -> Genome:
        return Genome(weight_bits=(bits, bits), sparsity=(0.0, 0.0), clusters=(0, 0))

    @staticmethod
    def _point(bits: int) -> DesignPoint:
        return DesignPoint(
            technique="combined", accuracy=0.9, area=float(bits), power=1.0, delay=1.0
        )

    def test_unbounded_preserves_insertion_order(self):
        cache = EvaluationCache()
        for bits in (2, 3, 4):
            cache.put(self._genome(bits), self._point(bits))
        cache.get(self._genome(2))  # a hit must not reorder an unbounded cache
        assert [p.area for p in cache.points()] == [2.0, 3.0, 4.0]
        assert cache.evictions == 0

    def test_bounded_evicts_least_recently_used(self):
        cache = EvaluationCache(max_entries=2)
        cache.put(self._genome(2), self._point(2))
        cache.put(self._genome(3), self._point(3))
        cache.get(self._genome(2))  # refresh 2 -> 3 is now the LRU entry
        cache.put(self._genome(4), self._point(4))
        assert self._genome(3) not in cache
        assert self._genome(2) in cache
        assert self._genome(4) in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries=0)

    def test_bounded_engine_still_correct(self, prepared_pipeline):
        """A cache smaller than the population re-evaluates deterministically:
        same points, more evaluations."""
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(finetune_epochs=2)
        genomes = _population_genomes(n=5)
        unbounded = SerialEvaluator(prepared, settings, seed=0)
        bounded = SerialEvaluator(prepared, settings, seed=0, cache_size=2)
        expected = unbounded.evaluate_population(genomes)
        first = bounded.evaluate_population(genomes)
        assert [_point_signature(p) for p in first] == [
            _point_signature(p) for p in expected
        ]
        assert bounded.cache_size == 2
        # Resubmission re-evaluates evicted genomes but returns identical points.
        again = bounded.evaluate_population(genomes)
        assert [_point_signature(p) for p in again] == [
            _point_signature(p) for p in expected
        ]
        assert bounded.n_evaluations > unbounded.n_evaluations
        assert bounded.cache.evictions > 0


class TestSimulatorPopulation:
    def _simulators(self, seeds_model):
        simulators = []
        models = []
        for bits in (3, 5, 8):
            model = seeds_model.clone()
            if bits == 5:
                prune_by_magnitude(model, [0.4, 0.2], global_ranking=False)
            attach_quantizers(model, bits)
            config = BespokeConfig(input_bits=4, weight_bits=bits)
            simulators.append(FixedPointSimulator(model, config))
            models.append(model)
        return simulators, models

    def test_population_scores_match_serial(self, seeds_model, seeds_data):
        simulators, _ = self._simulators(seeds_model)
        features = seeds_data.test.features
        scores = simulate_population(simulators, features)
        for index, simulator in enumerate(simulators):
            assert (scores[index] == simulator.simulate_batch(features)).all()

    def test_population_accuracy_matches_serial(self, seeds_model, seeds_data):
        simulators, _ = self._simulators(seeds_model)
        features = seeds_data.test.features
        labels = seeds_data.test.labels
        accuracies = population_accuracy(simulators, features, labels)
        for index, simulator in enumerate(simulators):
            assert float(accuracies[index]) == simulator.evaluate_accuracy(
                features, labels
            )

    def test_empty_population_rejected(self, seeds_data):
        with pytest.raises(ValueError):
            simulate_population([], seeds_data.test.features)

    def test_mismatched_population_rejected(self, seeds_model, seeds_data):
        simulators, _ = self._simulators(seeds_model)
        other = FixedPointSimulator(
            seeds_model.clone(), BespokeConfig(input_bits=6, weight_bits=4)
        )
        with pytest.raises(ValueError):
            simulate_population([simulators[0], other], seeds_data.test.features)
