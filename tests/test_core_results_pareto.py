"""Tests for repro.core.results and repro.core.pareto."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pareto import (
    area_gain_table,
    average_area_gain,
    best_area_gain_at_loss,
    dominates,
    front_as_arrays,
    hypervolume,
    normalize_points,
    pareto_front,
)
from repro.core.results import DesignPoint, NormalizedPoint, SweepResult


def point(accuracy, area, technique="quantization", **params):
    return DesignPoint(
        technique=technique, accuracy=accuracy, area=area, parameters=params
    )


BASELINE = point(0.90, 100.0, technique="baseline")


class TestDesignPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(technique="distillation", accuracy=0.5, area=1.0)
        with pytest.raises(ValueError):
            DesignPoint(technique="pruning", accuracy=1.5, area=1.0)
        with pytest.raises(ValueError):
            DesignPoint(technique="pruning", accuracy=0.5, area=-1.0)

    def test_normalization_values(self):
        normalized = point(0.855, 25.0).normalized(BASELINE)
        assert normalized.normalized_accuracy == pytest.approx(0.95)
        assert normalized.normalized_area == pytest.approx(0.25)
        assert normalized.accuracy_loss == pytest.approx(0.05)
        assert normalized.area_gain == pytest.approx(4.0)

    def test_normalization_requires_positive_baseline(self):
        zero_area_baseline = point(0.9, 0.0, technique="baseline")
        with pytest.raises(ValueError):
            point(0.8, 10.0).normalized(zero_area_baseline)

    def test_as_dict_roundtrip(self):
        data = point(0.8, 10.0, weight_bits=4).as_dict()
        rebuilt = DesignPoint(**data)
        assert rebuilt.accuracy == 0.8
        assert rebuilt.parameters == {"weight_bits": 4}


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [point(0.9, 50.0), point(0.85, 60.0), point(0.88, 40.0)]
        front = pareto_front(points)
        assert point(0.85, 60.0) not in front
        assert len(front) == 2

    def test_front_sorted_by_area(self):
        points = [point(0.9, 50.0), point(0.8, 10.0), point(0.85, 30.0)]
        front = pareto_front(points)
        areas = [p.area for p in front]
        assert areas == sorted(areas)

    def test_duplicates_collapsed(self):
        points = [point(0.9, 50.0), point(0.9, 50.0)]
        assert len(pareto_front(points)) == 1

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_dominates_helper(self):
        assert dominates(point(0.9, 10.0), point(0.8, 20.0))
        assert not dominates(point(0.9, 30.0), point(0.8, 20.0))
        assert not dominates(point(0.9, 10.0), point(0.9, 10.0))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1.0),
                st.floats(min_value=1.0, max_value=100.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_non_dominated(self, pairs):
        points = [point(accuracy, area) for accuracy, area in pairs]
        front = pareto_front(points)
        assert front  # never empty for non-empty input
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)
        # Every original point is dominated by or equal to some front member.
        for p in points:
            assert any(
                (f.accuracy >= p.accuracy and f.area <= p.area) for f in front
            )


class TestAreaGainQueries:
    def test_best_gain_within_budget(self):
        points = [point(0.89, 50.0), point(0.87, 20.0), point(0.70, 5.0)]
        best = best_area_gain_at_loss(points, BASELINE, max_accuracy_loss=0.05)
        assert best is not None
        assert best.area_gain == pytest.approx(5.0)

    def test_relative_budget_semantics(self):
        # 5% of 0.90 = 0.045 absolute; a point at 0.86 (abs loss 0.04, rel loss
        # 0.0444) is inside, a point at 0.85 (rel loss 0.0556) is outside.
        inside = best_area_gain_at_loss([point(0.86, 10.0)], BASELINE, 0.05)
        outside = best_area_gain_at_loss([point(0.85, 10.0)], BASELINE, 0.05)
        assert inside is not None
        assert outside is None

    def test_none_when_budget_never_met(self):
        assert best_area_gain_at_loss([point(0.5, 1.0)], BASELINE, 0.05) is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            best_area_gain_at_loss([point(0.9, 1.0)], BASELINE, -0.1)

    def test_area_gain_table_and_average(self):
        sweep = SweepResult(dataset="toy", baseline=BASELINE)
        sweep.add([point(0.89, 25.0, technique="quantization")])
        sweep.add([point(0.89, 50.0, technique="pruning")])
        sweep.add([point(0.5, 10.0, technique="clustering")])
        table = area_gain_table(sweep, max_accuracy_loss=0.05)
        assert table["quantization"] == pytest.approx(4.0)
        assert table["pruning"] == pytest.approx(2.0)
        assert table["clustering"] is None

        other = SweepResult(dataset="toy2", baseline=BASELINE)
        other.add([point(0.9, 10.0, technique="quantization")])
        mean_gain = average_area_gain([sweep, other], "quantization", 0.05)
        assert mean_gain == pytest.approx(np.sqrt(4.0 * 10.0))

    def test_average_gain_nan_when_never_met(self):
        sweep = SweepResult(dataset="toy", baseline=BASELINE)
        sweep.add([point(0.2, 1.0, technique="clustering")])
        assert np.isnan(average_area_gain([sweep], "clustering"))


class TestHypervolumeAndArrays:
    def test_hypervolume_zero_for_baseline_only(self):
        assert hypervolume([point(0.9, 100.0)], BASELINE) == pytest.approx(0.0)

    def test_hypervolume_increases_with_better_points(self):
        small = hypervolume([point(0.88, 80.0)], BASELINE)
        large = hypervolume([point(0.88, 80.0), point(0.89, 30.0)], BASELINE)
        assert large > small

    def test_hypervolume_bounded_by_reference_box(self):
        value = hypervolume([point(0.9, 1.0)], BASELINE, reference_loss=0.2)
        assert value <= 0.2 + 1e-12

    def test_hypervolume_invalid_reference(self):
        with pytest.raises(ValueError):
            hypervolume([point(0.9, 1.0)], BASELINE, reference_loss=0.0)

    def test_front_as_arrays_normalized(self):
        arrays = front_as_arrays([point(0.88, 25.0), point(0.7, 80.0)], BASELINE)
        assert set(arrays) == {"accuracy", "area"}
        assert arrays["area"].max() <= 1.0

    def test_normalize_points_helper(self):
        normalized = normalize_points([point(0.45, 50.0)], BASELINE)
        assert isinstance(normalized[0], NormalizedPoint)
        assert normalized[0].normalized_accuracy == pytest.approx(0.5)


class TestSweepResult:
    def test_by_technique_and_techniques(self):
        sweep = SweepResult(dataset="toy", baseline=BASELINE)
        sweep.add([point(0.8, 10.0, technique="pruning"), point(0.9, 20.0)])
        assert len(sweep.by_technique("pruning")) == 1
        assert sweep.techniques() == ["quantization", "pruning"]

    def test_normalized_points_filtered(self):
        sweep = SweepResult(dataset="toy", baseline=BASELINE)
        sweep.add([point(0.8, 10.0, technique="pruning"), point(0.9, 20.0)])
        assert len(sweep.normalized_points("pruning")) == 1
        assert len(sweep.normalized_points()) == 2

    def test_json_roundtrip(self, tmp_path):
        sweep = SweepResult(dataset="toy", baseline=BASELINE, metadata={"seed": 1})
        sweep.add([point(0.8, 10.0, weight_bits=3)])
        path = sweep.save_json(tmp_path / "sweep.json")
        loaded = SweepResult.load_json(path)
        assert loaded.dataset == "toy"
        assert loaded.baseline.accuracy == pytest.approx(0.9)
        assert loaded.points[0].parameters == {"weight_bits": 3}
        assert loaded.metadata == {"seed": 1}
