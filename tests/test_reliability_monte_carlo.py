"""Vectorized Monte-Carlo fault injection: bit-identity, seeding, engine seams.

The PR-5 tentpole promises that the batched fault-injection kernel is
*numerically invisible*: bit-identical to the retained per-trial reference
loop across fault models, weight bit-widths and degenerate rates, identical
between the single-simulator and population forms, and identical across
every evaluation seam of the engine (serial / process pool / stacked).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import fault_configs, quantized_weight_tensors

from repro.bespoke import BespokeConfig, FixedPointSimulator
from repro.core.pareto import dominates, pareto_front
from repro.core.results import DesignPoint
from repro.pruning import prune_by_magnitude
from repro.reliability import (
    FaultInjectionConfig,
    accumulator_bounds,
    fault_trial_seed,
    float_path_is_exact,
    monte_carlo_fault_injection,
    monte_carlo_fault_injection_reference,
    monte_carlo_population,
)
from repro.reliability import monte_carlo as monte_carlo_module
from repro.search import (
    EvaluationSettings,
    GenomeSpace,
    ParallelEvaluator,
    SerialEvaluator,
    objectives_of,
)


@pytest.fixture(scope="module")
def simulator(seeds_model):
    return FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4, weight_bits=4))


def _assert_results_equal(a, b):
    """Exact (bitwise float) equality of two FaultInjectionResults."""
    assert a.config == b.config
    assert a.fault_free_accuracy == b.fault_free_accuracy
    assert a.mean_accuracy == b.mean_accuracy
    assert a.worst_accuracy == b.worst_accuracy
    assert a.accuracy_per_trial == b.accuracy_per_trial
    assert a.faults_per_trial == b.faults_per_trial
    assert a.accuracy_std == b.accuracy_std


class TestTrialSeeds:
    def test_deterministic_and_in_numpy_range(self):
        seeds = [fault_trial_seed(7, trial) for trial in range(50)]
        assert seeds == [fault_trial_seed(7, trial) for trial in range(50)]
        assert all(0 <= seed < 2**32 for seed in seeds)

    def test_distinct_across_trials_and_bases(self):
        seeds = {fault_trial_seed(base, trial) for base in range(8) for trial in range(8)}
        assert len(seeds) == 64  # SHA-256 makes collisions vanishingly unlikely


class TestVectorizedEqualsReference:
    @pytest.mark.parametrize("fault_model", ["open", "short", "level_shift"])
    @pytest.mark.parametrize("fault_rate", [0.0, 0.05, 0.5, 1.0])
    def test_models_and_rates(self, simulator, seeds_data, fault_model, fault_rate):
        config = FaultInjectionConfig(
            fault_rate=fault_rate, fault_model=fault_model, n_trials=6, seed=11
        )
        fast = monte_carlo_fault_injection(
            simulator, seeds_data.test.features, seeds_data.test.labels, config
        )
        reference = monte_carlo_fault_injection_reference(
            simulator, seeds_data.test.features, seeds_data.test.labels, config
        )
        _assert_results_equal(fast, reference)

    @pytest.mark.parametrize("weight_bits", [2, 4, 8])
    def test_weight_bit_widths(self, seeds_model, seeds_data, weight_bits):
        simulator = FixedPointSimulator(
            seeds_model, BespokeConfig(input_bits=4, weight_bits=weight_bits)
        )
        config = FaultInjectionConfig(
            fault_rate=0.15, fault_model="level_shift", n_trials=5, seed=3
        )
        _assert_results_equal(
            monte_carlo_fault_injection(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
            monte_carlo_fault_injection_reference(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
        )

    def test_bias_sites(self, simulator, seeds_data):
        config = FaultInjectionConfig(
            fault_rate=0.3, fault_model="short", n_trials=5, seed=5, include_bias=True
        )
        _assert_results_equal(
            monte_carlo_fault_injection(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
            monte_carlo_fault_injection_reference(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
        )

    def test_pruned_model_excludes_dead_connections(self, seeds_model, seeds_data):
        pruned = seeds_model.clone()
        prune_by_magnitude(pruned, 0.5)
        simulator = FixedPointSimulator(pruned, BespokeConfig(input_bits=4, weight_bits=4))
        config = FaultInjectionConfig(fault_rate=1.0, fault_model="open", n_trials=3, seed=0)
        result = monte_carlo_fault_injection(
            simulator, seeds_data.test.features, seeds_data.test.labels, config
        )
        n_nonzero = sum(
            int(np.count_nonzero(layer.weights)) for layer in simulator.layers
        )
        assert result.faults_per_trial == [n_nonzero] * 3
        _assert_results_equal(
            result,
            monte_carlo_fault_injection_reference(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
        )

    @pytest.mark.parametrize("forced", [np.int64, np.float32, np.float64])
    def test_forward_dtype_tiers_identical(self, simulator, seeds_data, monkeypatch, forced):
        """Every arithmetic tier (float32/float64 BLAS, int64 fallback)
        produces the same bits — the dtype choice is purely a speed knob."""
        config = FaultInjectionConfig(fault_rate=0.2, fault_model="short", n_trials=4, seed=9)
        fast = monte_carlo_fault_injection(
            simulator, seeds_data.test.features, seeds_data.test.labels, config
        )
        monkeypatch.setattr(
            monte_carlo_module, "_forward_dtype", lambda simulators: np.dtype(forced)
        )
        forced_result = monte_carlo_fault_injection(
            simulator, seeds_data.test.features, seeds_data.test.labels, config
        )
        _assert_results_equal(fast, forced_result)

    def test_forward_dtype_tiering(self, simulator, seeds_model):
        """The tier picker matches the documented bounds."""
        assert monte_carlo_module._forward_dtype([simulator]) == np.float32
        wide = FixedPointSimulator(seeds_model, BespokeConfig(input_bits=4, weight_bits=8))
        wide_bound = max(accumulator_bounds(wide))
        expected = np.float32 if wide_bound < (1 << 21) else np.float64
        assert monte_carlo_module._forward_dtype([wide]) == expected
        # A mixed population adopts the widest member's tier.
        assert monte_carlo_module._forward_dtype([simulator, wide]) == expected

    @given(config=fault_configs(max_trials=4))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_configs(self, simulator, seeds_data, config):
        """Property over the full fault-config domain (rates 0.0 and 1.0,
        every model, bias sites on/off, arbitrary seeds)."""
        _assert_results_equal(
            monte_carlo_fault_injection(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
            monte_carlo_fault_injection_reference(
                simulator, seeds_data.test.features, seeds_data.test.labels, config
            ),
        )

    @given(drawn=quantized_weight_tensors())
    @settings(max_examples=60, deadline=None)
    def test_batch_accuracies_keep_argmax_tie_rule(self, drawn):
        """The kernel's folded-score accuracy keeps numpy's first-occurrence
        argmax tie rule on integer score matrices (small levels make ties
        common), in both the float64 and the int64 stacking dtypes."""
        scores, _ = drawn
        labels = np.arange(scores.shape[0]) % scores.shape[1]
        expected = float((np.argmax(scores, axis=-1) == labels).mean())
        for dtype in (np.float64, np.int64):
            batched = scores[None].astype(dtype)
            got = monte_carlo_module._batch_accuracies(batched, labels)
            assert got.shape == (1,) and float(got[0]) == expected

    def test_wide_class_count_regression(self):
        """>8 classes: the tie-fold multiplier must exceed every tie rank.

        Regression for a review finding: with a fixed multiplier of 8, a
        10-class row scoring (4, ..., 5) folded class 0 to 4*8+9=41 and the
        true winner (class 9, score 5) to 5*8+0=40 — declaring the wrong
        class. The multiplier now scales with the class count.
        """
        scores = np.zeros((1, 1, 10))
        scores[0, 0, 0] = 4.0
        scores[0, 0, 9] = 5.0
        labels = np.array([9])
        assert monte_carlo_module._batch_accuracies(scores, labels)[0] == 1.0

    @pytest.mark.parametrize("n_classes", [9, 10, 17])
    def test_wide_output_circuits(self, seeds_data, n_classes):
        """Full-kernel equality on circuits with more classes than the fold
        multiplier's old fixed value (pendigits-style 10-way outputs)."""
        from repro.nn import build_mlp

        model = build_mlp(7, (6,), n_classes, seed=n_classes)
        simulator = FixedPointSimulator(model, BespokeConfig(input_bits=4, weight_bits=4))
        labels = np.asarray(seeds_data.test.labels).reshape(-1) % n_classes
        config = FaultInjectionConfig(
            fault_rate=0.2, fault_model="short", n_trials=5, seed=7
        )
        _assert_results_equal(
            monte_carlo_fault_injection(
                simulator, seeds_data.test.features, labels, config
            ),
            monte_carlo_fault_injection_reference(
                simulator, seeds_data.test.features, labels, config
            ),
        )

    def test_zero_rate_trials_equal_fault_free(self, simulator, seeds_data):
        config = FaultInjectionConfig(fault_rate=0.0, n_trials=4, seed=0)
        result = monte_carlo_fault_injection(
            simulator, seeds_data.test.features, seeds_data.test.labels, config
        )
        assert result.faults_per_trial == [0] * 4
        assert result.accuracy_per_trial == [result.fault_free_accuracy] * 4
        assert result.accuracy_std == 0.0


class TestExactnessBound:
    def test_bounds_monotone_and_exactness(self, simulator):
        bounds = accumulator_bounds(simulator)
        assert len(bounds) == len(simulator.layers)
        assert all(bound > 0 for bound in bounds)
        assert float_path_is_exact(simulator)

    def test_trace_respects_static_bound(self, simulator, seeds_data):
        """The static worst case really bounds observed accumulators."""
        simulator.forward_integer(seeds_data.test.features, record_trace=True)
        bounds = accumulator_bounds(simulator)
        for low, high, bound in zip(
            simulator.trace.accumulator_min, simulator.trace.accumulator_max, bounds
        ):
            assert max(abs(low), abs(high)) <= bound


class TestPopulationKernel:
    def test_population_matches_single(self, seeds_model, seeds_data):
        models = []
        for sparsity in (0.0, 0.3, 0.6):
            model = seeds_model.clone()
            if sparsity:
                prune_by_magnitude(model, sparsity)
            models.append(model)
        simulators = [
            FixedPointSimulator(model, BespokeConfig(input_bits=4, weight_bits=4))
            for model in models
        ]
        configs = [
            FaultInjectionConfig(fault_rate=0.1, fault_model="short", n_trials=5, seed=seed)
            for seed in (101, 202, 303)
        ]
        population = monte_carlo_population(
            simulators, seeds_data.test.features, seeds_data.test.labels, configs
        )
        for simulator, config, result in zip(simulators, configs, population):
            _assert_results_equal(
                result,
                monte_carlo_fault_injection(
                    simulator, seeds_data.test.features, seeds_data.test.labels, config
                ),
            )

    def test_validation(self, simulator, seeds_data):
        config = FaultInjectionConfig(n_trials=2)
        with pytest.raises(ValueError):
            monte_carlo_population([], seeds_data.test.features, seeds_data.test.labels, [])
        with pytest.raises(ValueError):
            monte_carlo_population(
                [simulator], seeds_data.test.features, seeds_data.test.labels, [config] * 2
            )
        with pytest.raises(ValueError):
            monte_carlo_population(
                [simulator, simulator],
                seeds_data.test.features,
                seeds_data.test.labels,
                [config, FaultInjectionConfig(n_trials=3)],
            )


class TestEngineSeams:
    """Same seed => byte-identical robust design points across every seam."""

    @pytest.fixture(scope="class")
    def genomes(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        space = GenomeSpace(n_layers=len(prepared.baseline_model.dense_layers))
        rng = np.random.default_rng(42)
        return [space.random_genome(rng) for _ in range(4)]

    @staticmethod
    def _signatures(points):
        return [
            (p.accuracy, p.area, p.power, p.delay, p.robust_accuracy, p.accuracy_std)
            for p in points
        ]

    def test_serial_vs_workers_vs_stacked(self, prepared_pipeline, genomes):
        prepared = prepared_pipeline.prepare()
        settings = EvaluationSettings(
            finetune_epochs=2, fault_rate=0.1, n_fault_trials=4, fault_model="short"
        )
        serial = SerialEvaluator(prepared, settings, seed=0).evaluate_population(genomes)
        stacked = SerialEvaluator(
            prepared, settings, seed=0, stacked=True
        ).evaluate_population(genomes)
        with ParallelEvaluator(prepared, settings, seed=0, n_workers=2) as pool:
            parallel = pool.evaluate_population(genomes)
        assert self._signatures(serial) == self._signatures(stacked)
        assert self._signatures(serial) == self._signatures(parallel)
        assert all(p.robust_accuracy is not None for p in serial)

    def test_robust_settings_change_cache_context(self, fast_pipeline_config):
        from repro.campaign import evaluation_context_key

        plain = EvaluationSettings(finetune_epochs=2)
        robust = EvaluationSettings(finetune_epochs=2, fault_rate=0.1, n_fault_trials=4)
        assert evaluation_context_key(
            fast_pipeline_config, plain, 0
        ) != evaluation_context_key(fast_pipeline_config, robust, 0)


class TestRobustObjectivesAndFronts:
    @staticmethod
    def _point(accuracy, area, robust_accuracy=None, accuracy_std=None):
        return DesignPoint(
            technique="combined",
            accuracy=accuracy,
            area=area,
            robust_accuracy=robust_accuracy,
            accuracy_std=accuracy_std,
        )

    def test_objectives_of_appends_robust_loss(self):
        baseline = self._point(0.9, 10.0)
        point = self._point(0.85, 5.0, robust_accuracy=0.75, accuracy_std=0.01)
        two = objectives_of(point, baseline)
        three = objectives_of(point, baseline, robust=True)
        assert len(two) == 2 and three[:2] == two
        assert three[2] == pytest.approx(1.0 - 0.75 / 0.9)

    def test_objectives_of_requires_robust_accuracy(self):
        baseline = self._point(0.9, 10.0)
        with pytest.raises(ValueError):
            objectives_of(self._point(0.8, 5.0), baseline, robust=True)

    def test_robust_dominance_third_axis(self):
        fragile = self._point(0.9, 5.0, robust_accuracy=0.5)
        tough = self._point(0.9, 5.0, robust_accuracy=0.8)
        assert dominates(tough, fragile, robust=True)
        assert not dominates(fragile, tough, robust=True)
        # On the classic axes the two points tie — neither dominates.
        assert not dominates(tough, fragile) and not dominates(fragile, tough)

    def test_robust_front_keeps_tolerance_tradeoffs(self):
        small_fragile = self._point(0.9, 4.0, robust_accuracy=0.5)
        big_tough = self._point(0.9, 6.0, robust_accuracy=0.85)
        classic = pareto_front([small_fragile, big_tough])
        robust = pareto_front([small_fragile, big_tough], robust=True)
        assert classic == [small_fragile]
        assert robust == [small_fragile, big_tough]

    def test_robust_front_requires_field(self):
        with pytest.raises(ValueError):
            pareto_front([self._point(0.9, 4.0)], robust=True)

    def test_design_point_serialization_roundtrip(self):
        point = self._point(0.8, 3.0, robust_accuracy=0.7, accuracy_std=0.02)
        doc = point.as_dict()
        assert doc["robust_accuracy"] == 0.7 and doc["accuracy_std"] == 0.02
        assert DesignPoint(**doc) == point
        plain_doc = self._point(0.8, 3.0).as_dict()
        assert "robust_accuracy" not in plain_doc and "accuracy_std" not in plain_doc

    def test_design_point_validation(self):
        with pytest.raises(ValueError):
            self._point(0.8, 3.0, robust_accuracy=1.5)
        with pytest.raises(ValueError):
            self._point(0.8, 3.0, accuracy_std=-0.1)


class TestSettingsValidation:
    def test_evaluation_settings_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            EvaluationSettings(fault_rate=1.5)
        with pytest.raises(ValueError):
            EvaluationSettings(n_fault_trials=-1)
        with pytest.raises(ValueError):
            EvaluationSettings(fault_model="bridging")

    def test_robustness_enabled_needs_both_knobs(self):
        assert not EvaluationSettings().robustness_enabled
        assert not EvaluationSettings(fault_rate=0.1).robustness_enabled
        assert not EvaluationSettings(n_fault_trials=5).robustness_enabled
        assert EvaluationSettings(fault_rate=0.1, n_fault_trials=5).robustness_enabled

    def test_fault_config_derivation(self):
        settings = EvaluationSettings(
            fault_rate=0.2, n_fault_trials=7, fault_model="level_shift"
        )
        config = settings.fault_config(123)
        assert config.fault_rate == 0.2
        assert config.n_trials == 7
        assert config.fault_model == "level_shift"
        assert config.seed == 123
        assert settings.fault_config(None).seed == 0
