"""FrontStore: golden byte-identity, LRU bounds, invalidation, corruption.

The golden tests pin the serving contract at the byte level: a
single-campaign store serves ``report/front_<ds>.json`` exactly as the
report writer laid it down — robustness-on and robustness-off documents
alike. The corruption regressions reuse the chaos harness's torn-write
helpers (:func:`chaos.corrupt_record` / :func:`chaos.truncate_tail`) to
prove externally-damaged fronts are skipped, not served or fatal.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign.fabric.chaos import corrupt_record, truncate_tail
from repro.campaign.journal import REPORT_DIR, write_json_atomic
from repro.campaign.report import pareto_front
from repro.core.results import DesignPoint
from repro.serving import FrontCache, FrontStore, UnknownDatasetError
from repro.serving.store import build_columns

BASELINE = {
    "technique": "baseline",
    "accuracy": 0.9,
    "area": 10.0,
    "power": 5.0,
    "delay": 1.0,
    "parameters": {},
}


def robust_row(accuracy, area, robust_accuracy=0.8, **extra):
    """A 3-objective front row (robust columns present)."""
    row = {
        "technique": "combined",
        "accuracy": accuracy,
        "area": area,
        "power": area / 2.0,
        "delay": area / 4.0,
        "parameters": {"weight_bits": 4},
        "robust_accuracy": robust_accuracy,
        "accuracy_std": 0.01,
    }
    row.update(extra)
    return row


def plain_row(accuracy, area, **extra):
    """A 2-objective front row (robustness-off campaign)."""
    row = {
        "technique": "combined",
        "accuracy": accuracy,
        "area": area,
        "power": area / 2.0,
        "delay": area / 4.0,
        "parameters": {},
    }
    row.update(extra)
    return row


def write_front(campaign, dataset, rows, baseline=BASELINE):
    """Write one front document exactly like ``report.write_report`` does."""
    document = {
        "dataset": dataset,
        "baseline": baseline,
        "front": rows,
        "combined_best_gain": 2.0,
    }
    path = campaign / REPORT_DIR / f"front_{dataset}.json"
    write_json_atomic(path, document)
    return path


def make_campaign(root, name, fronts, spec=None):
    """A campaign directory serving ``fronts`` (``{dataset: rows}``)."""
    campaign = root / name
    (campaign / REPORT_DIR).mkdir(parents=True)
    for dataset, rows in fronts.items():
        write_front(campaign, dataset, rows)
    if spec is not None:
        write_json_atomic(campaign / "spec.json", spec)
    return campaign


# -- golden byte-identity -----------------------------------------------------------


def test_raw_front_is_byte_identical_to_report_file(tmp_path):
    campaign = make_campaign(
        tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0), robust_row(0.85, 1.0)]}
    )
    store = FrontStore(campaign)
    path = FrontStore.front_path(campaign, "seeds")
    assert store.raw_front("seeds") == path.read_bytes()


def test_raw_front_byte_identity_robustness_off(tmp_path):
    """Robustness-off fronts serve without robust keys sneaking in."""
    campaign = make_campaign(tmp_path, "camp", {"seeds": [plain_row(0.9, 2.0)]})
    store = FrontStore(campaign)
    raw = store.raw_front("seeds")
    assert raw == FrontStore.front_path(campaign, "seeds").read_bytes()
    assert b"robust_accuracy" not in raw and b"accuracy_std" not in raw


def test_raw_front_byte_identity_survives_repeated_reads(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    store = FrontStore(campaign, max_entries=1)
    first = store.raw_front("seeds")
    assert all(store.raw_front("seeds") == first for _ in range(3))


def test_view_decodes_points_and_marks_robust(tmp_path):
    campaign = make_campaign(
        tmp_path,
        "camp",
        {"seeds": [robust_row(0.9, 2.0)], "whitewine": [plain_row(0.8, 3.0)]},
    )
    store = FrontStore(campaign)
    robust_view = store.view(campaign, "seeds")
    plain_view = store.view(campaign, "whitewine")
    assert robust_view.robust and robust_view.points[0].robust_accuracy == 0.8
    assert not plain_view.robust and plain_view.points[0].robust_accuracy is None


def test_datasets_is_sorted_union(tmp_path):
    a = make_campaign(tmp_path, "a", {"seeds": [], "whitewine": []})
    b = make_campaign(tmp_path, "b", {"cardio": [], "seeds": []})
    assert FrontStore([a, b]).datasets() == ["cardio", "seeds", "whitewine"]


def test_unknown_dataset_raises_with_name(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": []})
    store = FrontStore(campaign)
    with pytest.raises(UnknownDatasetError) as excinfo:
        store.views("nonexistent")
    assert excinfo.value.dataset == "nonexistent"


def test_store_requires_at_least_one_campaign():
    with pytest.raises(ValueError, match="at least one campaign"):
        FrontStore([])


# -- torn / corrupt reports ----------------------------------------------------------


def test_corrupt_record_front_treated_as_absent(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    corrupt_record(FrontStore.front_path(campaign, "seeds"), line_index=4)
    store = FrontStore(campaign)
    with pytest.raises(UnknownDatasetError):
        store.views("seeds")


def test_truncated_front_treated_as_absent(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    truncate_tail(FrontStore.front_path(campaign, "seeds"), n_bytes=40)
    store = FrontStore(campaign)
    with pytest.raises(UnknownDatasetError):
        store.views("seeds")


def test_corrupt_campaign_falls_back_to_healthy_one(tmp_path):
    a = make_campaign(tmp_path, "a", {"seeds": [robust_row(0.9, 2.0)]})
    b = make_campaign(tmp_path, "b", {"seeds": [robust_row(0.85, 1.0)]})
    corrupt_record(FrontStore.front_path(a, "seeds"), line_index=4)
    store = FrontStore([a, b])
    views = store.views("seeds")
    assert [view.campaign for view in views] == [b]
    assert store.raw_front("seeds") == FrontStore.front_path(b, "seeds").read_bytes()


def test_repaired_front_served_after_refresh(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    path = FrontStore.front_path(campaign, "seeds")
    truncate_tail(path, n_bytes=60)
    store = FrontStore(campaign)
    with pytest.raises(UnknownDatasetError):
        store.views("seeds")
    write_front(campaign, "seeds", [robust_row(0.95, 1.5)])
    store.refresh()
    assert store.views("seeds")[0].points[0].accuracy == 0.95


def test_front_with_invalid_point_schema_is_skipped(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": []})
    write_json_atomic(
        FrontStore.front_path(campaign, "seeds"),
        {"dataset": "seeds", "front": [{"technique": "not-a-technique", "accuracy": 2}]},
    )
    with pytest.raises(UnknownDatasetError):
        FrontStore(campaign).views("seeds")


# -- LRU semantics (mirroring EvaluationCache) ---------------------------------------


def test_front_cache_rejects_non_positive_bound():
    with pytest.raises(ValueError, match="max_entries must be >= 1"):
        FrontCache(max_entries=0)
    with pytest.raises(ValueError, match="max_entries must be >= 1"):
        FrontCache(max_entries=-3)


def test_store_hits_misses_counted(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    store = FrontStore(campaign)
    store.views("seeds")
    store.views("seeds")
    stats = store.stats()
    assert stats["misses"] == 1 and stats["hits"] == 1
    assert stats["cached_views"] == 1 and stats["evictions"] == 0


def test_lru_evicts_least_recently_used_view(tmp_path):
    fronts = {name: [robust_row(0.9, 2.0)] for name in ("a", "b", "c")}
    campaign = make_campaign(tmp_path, "camp", fronts)
    store = FrontStore(campaign, max_entries=2)
    store.views("a")
    store.views("b")
    store.views("a")  # refresh a's recency: b is now LRU
    store.views("c")  # evicts b
    assert store.stats()["evictions"] == 1
    store.views("a")  # still cached
    assert store.stats()["hits"] == 2
    store.views("b")  # evicted: must re-deserialize
    assert store.stats()["misses"] == 4


def test_evicted_view_rereads_identical_bytes(tmp_path):
    fronts = {name: [robust_row(0.9, 2.0)] for name in ("a", "b")}
    campaign = make_campaign(tmp_path, "camp", fronts)
    store = FrontStore(campaign, max_entries=1)
    first = store.raw_front("a")
    store.raw_front("b")  # evicts a
    assert store.raw_front("a") == first


# -- invalidation --------------------------------------------------------------------


def test_rewritten_front_invalidates_cached_view(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    store = FrontStore(campaign)
    assert store.views("seeds")[0].points[0].accuracy == 0.9
    write_front(campaign, "seeds", [robust_row(0.95, 1.5), robust_row(0.7, 0.5)])
    view = store.views("seeds")[0]
    assert [point.accuracy for point in view.points] == [0.95, 0.7]
    assert store.raw_front("seeds") == FrontStore.front_path(
        campaign, "seeds"
    ).read_bytes()


def test_refresh_reports_and_drops_stale_views(tmp_path):
    campaign = make_campaign(
        tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)], "cardio": [plain_row(0.8, 1.0)]}
    )
    store = FrontStore(campaign)
    store.views("seeds")
    store.views("cardio")
    write_front(campaign, "seeds", [robust_row(0.6, 4.0)])
    counts = store.refresh()
    assert counts["invalidated"] == 1
    assert counts["datasets"] == 2
    assert store.views("seeds")[0].points[0].accuracy == 0.6


def test_deleted_front_disappears_after_refresh(tmp_path):
    campaign = make_campaign(tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0)]})
    store = FrontStore(campaign)
    store.views("seeds")
    FrontStore.front_path(campaign, "seeds").unlink()
    store.refresh()
    assert store.datasets() == []
    with pytest.raises(UnknownDatasetError):
        store.views("seeds")


# -- columnar views ------------------------------------------------------------------


def test_columns_are_read_only_and_aligned(tmp_path):
    campaign = make_campaign(
        tmp_path, "camp", {"seeds": [robust_row(0.9, 2.0), plain_row(0.8, 1.0)]}
    )
    view = FrontStore(campaign).views("seeds")[0]
    assert view.columns["accuracy"].tolist() == [0.9, 0.8]
    assert view.columns["area"].tolist() == [2.0, 1.0]
    assert np.isnan(view.columns["robust_accuracy"][1])  # plain row: NaN
    with pytest.raises(ValueError):
        view.columns["accuracy"][0] = 0.0


def test_build_columns_empty_points():
    columns = build_columns([])
    assert all(columns[name].shape == (0,) for name in columns)


# -- union merge ---------------------------------------------------------------------


def test_union_front_matches_report_merge(tmp_path):
    rows_a = [robust_row(0.9, 2.0), robust_row(0.8, 1.0)]
    rows_b = [robust_row(0.95, 3.0), robust_row(0.8, 1.0)]
    a = make_campaign(tmp_path, "a", {"seeds": rows_a})
    b = make_campaign(tmp_path, "b", {"seeds": rows_b})
    merged, robust = FrontStore([a, b]).union_front("seeds")
    points = [DesignPoint(**row) for row in rows_a + rows_b]
    expected = pareto_front(points, robust=True)
    assert robust is True
    assert [p.as_dict() for p in merged] == [p.as_dict() for p in expected]


def test_union_drops_robust_axis_when_any_campaign_lacks_it(tmp_path):
    a = make_campaign(tmp_path, "a", {"seeds": [robust_row(0.9, 2.0)]})
    b = make_campaign(tmp_path, "b", {"seeds": [plain_row(0.8, 1.0)]})
    merged, robust = FrontStore([a, b]).union_front("seeds")
    assert robust is False
    points = [DesignPoint(**robust_row(0.9, 2.0)), DesignPoint(**plain_row(0.8, 1.0))]
    expected = pareto_front(points, robust=False)
    assert [p.as_dict() for p in merged] == [p.as_dict() for p in expected]


def test_multi_campaign_raw_front_is_canonical_merged_json(tmp_path):
    a = make_campaign(tmp_path, "a", {"seeds": [robust_row(0.9, 2.0)]})
    b = make_campaign(tmp_path, "b", {"seeds": [robust_row(0.8, 1.0)]})
    store = FrontStore([a, b])
    document = json.loads(store.raw_front("seeds").decode())
    merged, _ = store.union_front("seeds")
    assert document["dataset"] == "seeds"
    assert document["front"] == [point.as_dict() for point in merged]
    assert document["baseline"] == BASELINE  # shared baseline survives the merge


# -- fault-rate tags -----------------------------------------------------------------


def spec_with(search_extra=None, pipeline_extra=None):
    """A minimal campaign spec dict with optional fault-rate knobs."""
    search = {"algorithm": "ga", "name": "ga", "population_size": 4, "n_generations": 2}
    search.update(search_extra or {})
    spec = {"name": "t", "datasets": ["seeds"], "seeds": [0], "searches": [search]}
    if pipeline_extra:
        spec["pipeline"] = pipeline_extra
    return spec


def test_fault_rate_search_level_wins_over_pipeline(tmp_path):
    campaign = make_campaign(
        tmp_path,
        "camp",
        {"seeds": [robust_row(0.9, 2.0)]},
        spec=spec_with({"fault_rate": 0.05}, {"fault_rate": 0.2}),
    )
    assert FrontStore(campaign).views("seeds")[0].fault_rate == 0.05


def test_fault_rate_pipeline_fallback_and_absent(tmp_path):
    with_pipeline = make_campaign(
        tmp_path,
        "pipe",
        {"seeds": [robust_row(0.9, 2.0)]},
        spec=spec_with(None, {"fault_rate": 0.1}),
    )
    without = make_campaign(
        tmp_path, "none", {"seeds": [plain_row(0.8, 1.0)]}, spec=spec_with()
    )
    assert FrontStore(with_pipeline).views("seeds")[0].fault_rate == 0.1
    assert FrontStore(without).views("seeds")[0].fault_rate is None


def test_views_filter_by_fault_rate(tmp_path):
    a = make_campaign(
        tmp_path,
        "a",
        {"seeds": [robust_row(0.9, 2.0)]},
        spec=spec_with({"fault_rate": 0.05}),
    )
    b = make_campaign(
        tmp_path,
        "b",
        {"seeds": [robust_row(0.8, 1.0)]},
        spec=spec_with({"fault_rate": 0.1}),
    )
    store = FrontStore([a, b])
    assert [v.campaign for v in store.views("seeds")] == [a, b]
    assert [v.campaign for v in store.views("seeds", fault_rate=0.05)] == [a]
    assert store.views("seeds", fault_rate=0.3) == []
