"""Unit tests for the pluggable array-backend seam (`repro.core.backend`).

Three concerns:

* the registry and its resolution/validation API (precedence, env var,
  unknown/uninstalled errors, custom registration),
* the :class:`NumpyBackend` operations agreeing element-for-element with
  the raw numpy sequences they alias (the byte-identity contract),
* the `backend` knob on `PipelineConfig` / `GAConfig` / `EvaluationSettings`
  and its consolidation through `resolve_evaluation_settings`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipelineConfig
from repro.core.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_available,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    validate_backend_name,
)
from repro.search.ga import GAConfig
from repro.search.settings import (
    EvaluationSettings,
    evaluation_settings_for,
    resolve_evaluation_settings,
)


# -- registry and resolution ---------------------------------------------------------


class TestRegistry:
    def test_numpy_and_torch_are_registered(self):
        assert "numpy" in registered_backends()
        assert "torch" in registered_backends()

    def test_numpy_is_always_available(self):
        assert backend_available("numpy")
        assert "numpy" in available_backends()

    def test_available_is_subset_of_registered(self):
        assert set(available_backends()) <= set(registered_backends())

    def test_get_backend_caches_instances(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="Unknown array backend 'nope'"):
            get_backend("nope")

    def test_unavailable_backend_raises_import_error_with_extra_hint(self):
        if backend_available("torch"):
            pytest.skip("torch installed; the gate cannot fire here")
        with pytest.raises(ImportError, match="torch"):
            get_backend("torch")

    def test_backend_available_false_for_unknown(self):
        assert not backend_available("nope")

    def test_register_backend_round_trip(self):
        class _Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", _Custom)
        try:
            assert "custom-test" in registered_backends()
            assert backend_available("custom-test")
            assert isinstance(get_backend("custom-test"), _Custom)
            assert resolve_backend("custom-test") is get_backend("custom-test")
        finally:
            from repro.core import backend as backend_module

            backend_module._FACTORIES.pop("custom-test", None)
            backend_module._INSTANCES.pop("custom-test", None)

    def test_register_backend_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)


class TestResolution:
    def test_none_resolves_to_default(self):
        assert isinstance(resolve_backend(None), NumpyBackend)

    def test_name_resolves_to_instance(self):
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_instance_passes_through(self):
        ops = NumpyBackend()
        assert resolve_backend(ops) is ops

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert default_backend_name() == "numpy"
        monkeypatch.setenv(ENV_VAR, "torch")
        assert default_backend_name() == "torch"

    def test_empty_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert default_backend_name() == DEFAULT_BACKEND

    def test_unset_env_var_falls_back(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend_name() == DEFAULT_BACKEND


class TestValidation:
    def test_none_and_registered_names_pass(self):
        validate_backend_name(None, "owner")
        validate_backend_name("numpy", "owner")
        # availability is not checked at config time: torch validates even
        # when the library is absent (it fails at kernel resolution instead)
        validate_backend_name("torch", "owner")

    @pytest.mark.parametrize("bad", ["nope", 42, 3.14, ["numpy"]])
    def test_bad_values_raise_with_owner_name(self, bad):
        with pytest.raises(ValueError, match="MyConfig.backend"):
            validate_backend_name(bad, "MyConfig.backend")


# -- NumpyBackend op equality vs raw numpy -------------------------------------------


@pytest.fixture(scope="module")
def ops() -> NumpyBackend:
    return NumpyBackend()


class TestNumpyBackendOps:
    def test_base_class_ops_are_abstract(self):
        base = ArrayBackend()
        with pytest.raises(NotImplementedError):
            base.matmul(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_matmul(self, ops, rng):
        a = rng.standard_normal((3, 5, 4))
        b = rng.standard_normal((3, 4, 2))
        assert np.array_equal(ops.matmul(a, b), np.matmul(a, b))

    def test_segment_max(self, ops, rng):
        values = rng.standard_normal((4, 12))
        starts = np.array([0, 3, 7])
        assert np.array_equal(
            ops.segment_max(values, starts),
            np.maximum.reduceat(values, starts, axis=1),
        )

    def test_take(self, ops, rng):
        values = rng.standard_normal((3, 4))
        indices = np.array([0, 2, 2, 1, 3])
        expected = np.take(values, indices, axis=1)
        assert np.array_equal(ops.take(values, indices), expected)
        out = np.empty_like(expected)
        result = ops.take(values, indices, out=out)
        assert result is out and np.array_equal(out, expected)

    def test_smallest_k_selects_the_k_smallest(self, ops, rng):
        keys = rng.integers(0, 2**63, size=(6, 40), dtype=np.uint64)
        k = 5
        picks = ops.smallest_k(keys, k)
        assert picks.shape == (6, k)
        for row in range(keys.shape[0]):
            chosen = np.sort(keys[row, picks[row]])
            expected = np.sort(keys[row])[:k]
            assert np.array_equal(chosen, expected)

    def test_argmax_first_occurrence_ties(self, ops):
        scores = np.array([[1.0, 3.0, 3.0], [2.0, 2.0, 1.0]])
        assert np.array_equal(ops.argmax(scores), np.array([1, 0]))

    def test_argsort_stable(self, ops):
        values = np.array([2.0, 1.0, 2.0, 0.5, 1.0])
        assert np.array_equal(
            ops.argsort_stable(values), np.argsort(values, kind="stable")
        )

    def test_domination_matrix(self, ops, rng):
        objectives = rng.standard_normal((7, 3))
        matrix = ops.domination_matrix(objectives)
        for i in range(7):
            for j in range(7):
                dominates = bool(
                    np.all(objectives[i] <= objectives[j])
                    and np.any(objectives[i] < objectives[j])
                )
                assert matrix[i, j] == dominates

    def test_put_along_axis_in_place(self, ops, rng):
        stack = rng.standard_normal((3, 8))
        indices = np.array([[0, 2], [1, 3], [4, 7]])
        values = rng.standard_normal((3, 2))
        expected = stack.copy()
        np.put_along_axis(expected, indices, values, axis=-1)
        result = ops.put_along_axis(stack, indices, values)
        assert result is stack and np.array_equal(stack, expected)

    def test_quantize_matches_literal_sequence(self, ops, rng):
        values = rng.standard_normal((2, 10))
        scale = np.full((2, 10), 0.25)
        neg_level, pos_level = np.full_like(scale, -3.0), np.full_like(scale, 3.0)
        expected = np.empty_like(values)
        np.divide(values, scale, out=expected)
        np.rint(expected, out=expected)
        np.maximum(expected, neg_level, out=expected)
        np.minimum(expected, pos_level, out=expected)
        expected += 0.0
        expected *= scale
        out = np.empty_like(values)
        ops.quantize(values, scale, neg_level, pos_level, out=out)
        assert np.array_equal(
            out.view(np.uint64), expected.view(np.uint64)
        )  # byte equality, -0.0 included

    def test_draws_from_bytes_big_endian(self, ops):
        raw = bytes(range(16))
        draws = ops.draws_from_bytes(raw, 1, 2)
        assert draws.dtype == np.uint64 and draws.shape == (1, 2)
        assert draws[0, 0] == int.from_bytes(raw[:8], "big")
        assert draws[0, 1] == int.from_bytes(raw[8:], "big")


# -- the backend knob on the configs --------------------------------------------------


class TestBackendKnob:
    def test_pipeline_config_accepts_and_validates(self):
        assert PipelineConfig(dataset="seeds", backend="numpy").backend == "numpy"
        assert PipelineConfig(dataset="seeds").backend is None
        with pytest.raises(ValueError, match="PipelineConfig.backend"):
            PipelineConfig(dataset="seeds", backend="nope")

    def test_ga_config_accepts_and_validates(self):
        assert GAConfig(backend="numpy").backend == "numpy"
        with pytest.raises(ValueError, match="GAConfig.backend"):
            GAConfig(backend="nope")

    def test_evaluation_settings_accepts_and_validates(self):
        assert EvaluationSettings(backend="numpy").backend == "numpy"
        with pytest.raises(ValueError, match="EvaluationSettings.backend"):
            EvaluationSettings(backend="nope")


# -- resolve_evaluation_settings: every inheritance combination -----------------------


class TestResolveEvaluationSettings:
    def test_defaults_with_no_configs(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        settings = resolve_evaluation_settings()
        assert settings == EvaluationSettings(
            finetune_epochs=8,
            fault_rate=0.0,
            n_fault_trials=0,
            fault_model="open",
            backend="numpy",
        )

    def test_backend_materializes_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "torch")
        assert resolve_evaluation_settings().backend == "torch"

    def test_pipeline_values_inherited(self):
        config = PipelineConfig(
            dataset="seeds",
            finetune_epochs=3,
            fault_rate=0.1,
            n_fault_trials=7,
            fault_model="short",
            backend="numpy",
        )
        settings = resolve_evaluation_settings(config)
        assert settings.finetune_epochs == 3
        assert settings.fault_rate == 0.1
        assert settings.n_fault_trials == 7
        assert settings.fault_model == "short"
        assert settings.backend == "numpy"

    def test_ga_values_override_pipeline(self):
        config = PipelineConfig(
            dataset="seeds",
            finetune_epochs=3,
            fault_rate=0.1,
            n_fault_trials=7,
            fault_model="short",
            backend="numpy",
        )
        ga_config = GAConfig(
            finetune_epochs=5,
            fault_rate=0.2,
            n_fault_trials=9,
            fault_model="level_shift",
            backend="torch",
        )
        settings = resolve_evaluation_settings(config, ga_config=ga_config)
        assert settings.finetune_epochs == 5
        assert settings.fault_rate == 0.2
        assert settings.n_fault_trials == 9
        assert settings.fault_model == "level_shift"
        assert settings.backend == "torch"

    def test_none_ga_knobs_fall_through_to_pipeline(self):
        config = PipelineConfig(dataset="seeds", fault_rate=0.3, backend="torch")
        ga_config = GAConfig()  # every inheritable knob defaults to None
        settings = resolve_evaluation_settings(config, ga_config=ga_config)
        assert settings.fault_rate == 0.3
        assert settings.backend == "torch"
        # GAConfig.finetune_epochs is never None: the GA default (6) wins
        assert settings.finetune_epochs == ga_config.finetune_epochs

    def test_ga_only_without_pipeline(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        settings = resolve_evaluation_settings(
            ga_config=GAConfig(fault_rate=0.05, n_fault_trials=2)
        )
        assert settings.fault_rate == 0.05
        assert settings.n_fault_trials == 2
        assert settings.fault_model == "open"
        assert settings.backend == "numpy"

    def test_legacy_wrapper_matches_resolver(self):
        config = PipelineConfig(dataset="seeds", fault_rate=0.2)
        ga_config = GAConfig(n_fault_trials=4)
        assert evaluation_settings_for(ga_config, config) == resolve_evaluation_settings(
            config, ga_config=ga_config
        )
