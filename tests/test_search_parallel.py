"""Tests for the parallel + cached evaluation engine (evaluator.py / parallel.py)."""

import numpy as np
import pytest

from repro.search import (
    EvaluationCache,
    EvaluationSettings,
    GAConfig,
    Genome,
    HardwareAwareGA,
    ParallelEvaluator,
    SerialEvaluator,
    create_evaluator,
    genome_seed,
    grid_search,
    random_search,
    resolve_workers,
)


@pytest.fixture(scope="module")
def prepared(prepared_pipeline):
    return prepared_pipeline.prepare()


def genome(bits=4, sparsity=0.0, clusters=0, n_layers=2):
    return Genome(
        weight_bits=(bits,) * n_layers,
        sparsity=(sparsity,) * n_layers,
        clusters=(clusters,) * n_layers,
    )


FAST = EvaluationSettings(finetune_epochs=1)


class TestGenomeSeed:
    def test_deterministic(self):
        g = genome(bits=4)
        assert genome_seed(0, g) == genome_seed(0, g)

    def test_depends_on_genome_and_base_seed(self):
        a, b = genome(bits=4), genome(bits=5)
        assert genome_seed(0, a) != genome_seed(0, b)
        assert genome_seed(0, a) != genome_seed(1, a)

    def test_none_base_seed_passes_through(self):
        assert genome_seed(None, genome()) is None

    def test_fits_numpy_seed_space(self):
        seed = genome_seed(12345, genome(bits=7, sparsity=0.3))
        assert 0 <= seed < 2**32
        np.random.default_rng(seed)  # must be a valid seed


class TestResolveWorkers:
    def test_serial_defaults(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestEvaluationCache:
    def test_lookup_and_points(self, prepared):
        cache = EvaluationCache()
        g = genome()
        assert cache.get(g) is None
        assert g not in cache
        cache.put(g, prepared.baseline_point)
        assert cache.get(g) is prepared.baseline_point
        assert g in cache
        assert len(cache) == 1
        assert cache.points() == [prepared.baseline_point]


class TestSerialEvaluator:
    def test_population_dedupes_and_caches(self, prepared):
        evaluator = SerialEvaluator(prepared, FAST, seed=0)
        batch = [genome(bits=4), genome(bits=2), genome(bits=4)]
        points = evaluator.evaluate_population(batch)
        assert len(points) == 3
        assert points[0] is points[2]
        assert evaluator.n_evaluations == 2
        # 3 requests, 2 fresh evaluations: the intra-batch duplicate is a hit.
        assert evaluator.cache_hits == 1
        assert evaluator.cache.misses == 2

    def test_cache_shared_across_generations(self, prepared):
        evaluator = SerialEvaluator(prepared, FAST, seed=0)
        first = evaluator.evaluate_population([genome(bits=4), genome(bits=2)])
        hits_before = evaluator.cache_hits
        second = evaluator.evaluate_population([genome(bits=2), genome(bits=4)])
        assert evaluator.n_evaluations == 2  # nothing re-evaluated
        assert evaluator.cache_hits > hits_before
        assert first[0] is second[1] and first[1] is second[0]

    def test_all_points_in_first_seen_order(self, prepared):
        evaluator = SerialEvaluator(prepared, FAST, seed=0)
        a = evaluator(genome(bits=8))
        b = evaluator(genome(bits=3))
        assert evaluator.all_points() == [a, b]

    def test_context_manager(self, prepared):
        with SerialEvaluator(prepared, FAST, seed=0) as evaluator:
            evaluator(genome())
        assert evaluator.cache_size == 1


class TestParallelEvaluator:
    def test_bit_identical_to_serial(self, prepared):
        batch = [genome(bits=b, sparsity=s) for b in (2, 4) for s in (0.0, 0.3)]
        with ParallelEvaluator(prepared, FAST, seed=0, n_workers=2) as parallel:
            parallel_points = parallel.evaluate_population(batch)
        serial_points = SerialEvaluator(prepared, FAST, seed=0).evaluate_population(batch)
        for p, s in zip(parallel_points, serial_points):
            assert p.accuracy == s.accuracy
            assert p.area == s.area
            assert p.power == s.power

    def test_single_worker_never_builds_pool(self, prepared):
        evaluator = ParallelEvaluator(prepared, FAST, seed=0, n_workers=1)
        evaluator.evaluate_population([genome(bits=4), genome(bits=2)])
        assert evaluator._executor is None

    def test_close_is_idempotent(self, prepared):
        evaluator = ParallelEvaluator(prepared, FAST, seed=0, n_workers=2)
        evaluator.evaluate_population([genome(bits=4), genome(bits=2)])
        evaluator.close()
        evaluator.close()
        # Serial path still works after the pool is gone.
        evaluator.n_workers = 1
        evaluator(genome(bits=3))
        assert evaluator.n_evaluations == 3

    def test_factory_picks_engine(self, prepared):
        assert type(create_evaluator(prepared, FAST, n_workers=1)) is SerialEvaluator
        engine = create_evaluator(prepared, FAST, n_workers=2)
        assert isinstance(engine, ParallelEvaluator)
        engine.close()


class TestParallelSearchEquivalence:
    GA_KWARGS = dict(
        population_size=6, n_generations=2, finetune_epochs=1, seed=0,
        bit_choices=(2, 4, 8), sparsity_choices=(0.0, 0.3), cluster_choices=(0, 2),
    )

    def test_ga_front_bit_identical(self, prepared):
        serial = HardwareAwareGA(prepared, GAConfig(**self.GA_KWARGS, n_workers=1)).run()
        parallel = HardwareAwareGA(prepared, GAConfig(**self.GA_KWARGS, n_workers=2)).run()
        assert [(p.accuracy, p.area) for p in serial.front] == [
            (p.accuracy, p.area) for p in parallel.front
        ]
        assert [(p.accuracy, p.area) for p in serial.all_points] == [
            (p.accuracy, p.area) for p in parallel.all_points
        ]
        assert serial.n_evaluations == parallel.n_evaluations

    def test_ga_reports_cache_hits(self, prepared):
        result = HardwareAwareGA(prepared, GAConfig(**self.GA_KWARGS)).run()
        assert all("cache_hits" in entry for entry in result.generations)

    def test_random_search_worker_invariant(self, prepared):
        serial = random_search(prepared, n_evaluations=4, settings=FAST, seed=0)
        parallel = random_search(
            prepared, n_evaluations=4, settings=FAST, seed=0, n_workers=2
        )
        assert [(p.accuracy, p.area) for p in serial] == [
            (p.accuracy, p.area) for p in parallel
        ]

    def test_grid_search_worker_invariant(self, prepared):
        kwargs = dict(
            bit_choices=(4, 8), sparsity_choices=(0.0, 0.4), cluster_choices=(0,),
            settings=FAST, seed=0,
        )
        serial = grid_search(prepared, **kwargs)
        parallel = grid_search(prepared, **kwargs, n_workers=2)
        assert [(p.accuracy, p.area) for p in serial] == [
            (p.accuracy, p.area) for p in parallel
        ]
