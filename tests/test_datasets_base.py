"""Unit tests for repro.datasets.base (Dataset container and splitting)."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, train_test_split, train_val_test_split


@pytest.fixture
def dataset():
    generator = np.random.default_rng(0)
    features = generator.normal(size=(100, 4))
    labels = np.repeat([0, 1, 2, 3], 25)
    return Dataset(features=features, labels=labels, name="toy")


class TestDatasetContainer:
    def test_basic_properties(self, dataset):
        assert dataset.n_samples == 100
        assert dataset.n_features == 4
        assert dataset.n_classes == 4
        assert len(dataset) == 100

    def test_class_counts_and_balance(self, dataset):
        np.testing.assert_array_equal(dataset.class_counts(), [25, 25, 25, 25])
        np.testing.assert_allclose(dataset.class_balance(), [0.25] * 4)

    def test_subset_preserves_metadata(self, dataset):
        subset = dataset.subset(np.arange(10))
        assert subset.n_samples == 10
        assert subset.name == "toy"

    def test_with_features_replaces_matrix(self, dataset):
        replaced = dataset.with_features(np.zeros((100, 4)))
        assert np.all(replaced.features == 0.0)
        np.testing.assert_array_equal(replaced.labels, dataset.labels)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Dataset(features=np.zeros((3,)), labels=np.zeros(3))
        with pytest.raises(ValueError):
            Dataset(features=np.zeros((3, 2)), labels=np.zeros(4))
        with pytest.raises(ValueError):
            Dataset(features=np.zeros((2, 2)), labels=np.array([-1, 0]))

    def test_labels_cast_to_int(self):
        data = Dataset(features=np.zeros((2, 1)), labels=np.array([0.0, 1.0]))
        assert data.labels.dtype.kind == "i"


class TestTrainTestSplit:
    def test_sizes(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.3, seed=0)
        assert train.n_samples + test.n_samples == dataset.n_samples
        assert abs(test.n_samples - 30) <= 4

    def test_no_overlap_and_full_coverage(self, dataset):
        # Tag each sample with a unique feature value to track identity.
        tagged = dataset.with_features(
            np.arange(dataset.n_samples, dtype=float).reshape(-1, 1) @ np.ones((1, 4))
        )
        train, test = train_test_split(tagged, test_fraction=0.25, seed=1)
        train_ids = set(train.features[:, 0].astype(int))
        test_ids = set(test.features[:, 0].astype(int))
        assert train_ids.isdisjoint(test_ids)
        assert len(train_ids | test_ids) == dataset.n_samples

    def test_stratification_keeps_all_classes(self, dataset):
        _, test = train_test_split(dataset, test_fraction=0.2, seed=2, stratify=True)
        assert set(np.unique(test.labels)) == {0, 1, 2, 3}

    def test_stratified_split_on_imbalanced_data(self):
        labels = np.array([0] * 96 + [1] * 4)
        data = Dataset(features=np.random.default_rng(0).normal(size=(100, 2)), labels=labels)
        train, test = train_test_split(data, test_fraction=0.3, seed=0, stratify=True)
        # The rare class appears on both sides.
        assert (train.labels == 1).sum() >= 1
        assert (test.labels == 1).sum() >= 1

    def test_deterministic_given_seed(self, dataset):
        a_train, _ = train_test_split(dataset, seed=5)
        b_train, _ = train_test_split(dataset, seed=5)
        np.testing.assert_array_equal(a_train.features, b_train.features)

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.0)


class TestThreeWaySplit:
    def test_partition_sizes(self, dataset):
        split = train_val_test_split(dataset, val_fraction=0.2, test_fraction=0.2, seed=0)
        total = split.train.n_samples + split.validation.n_samples + split.test.n_samples
        assert total == dataset.n_samples
        assert split.test.n_samples >= 15
        assert split.validation.n_samples >= 15

    def test_properties(self, dataset):
        split = train_val_test_split(dataset, seed=0)
        assert split.name == "toy"
        assert split.n_features == 4
        assert split.n_classes == 4

    def test_invalid_fractions(self, dataset):
        with pytest.raises(ValueError):
            train_val_test_split(dataset, val_fraction=0.6, test_fraction=0.5)
