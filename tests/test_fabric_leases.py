"""Lease protocol: acquisition, renewal, stealing, and safety invariants.

The load-bearing property (ISSUE-7 satellite): under *arbitrary*
interleavings of acquire/renew/release/steal/clock-advance, no job is ever
owned by two verified live leases at once. Unit tests pin each protocol
transition; the hypothesis property sweeps the interleaving space.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from strategies import lease_event_sequences

from repro.campaign.fabric import LeaseDirectory, LeaseLost, ManualClock


TTL = 10.0


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def leases(tmp_path, clock):
    return LeaseDirectory(tmp_path / "leases", ttl=TTL, now_fn=clock)


class TestLeaseProtocol:
    def test_acquire_is_exclusive(self, leases):
        first = leases.acquire("job-a", "w1")
        assert first is not None
        assert leases.acquire("job-a", "w2") is None
        assert leases.acquire("job-b", "w2") is not None

    def test_renew_extends_expiry(self, leases, clock):
        lease = leases.acquire("job-a", "w1")
        clock.advance(TTL / 2)
        renewed = leases.renew(lease)
        assert renewed.expires == pytest.approx(clock.now + TTL)
        assert renewed.renewals == 1
        assert leases.verify(renewed)

    def test_expired_lease_is_stolen(self, leases, clock):
        stale = leases.acquire("job-a", "w1")
        clock.advance(TTL + 1)
        stolen = leases.acquire("job-a", "w2")
        assert stolen is not None and stolen.worker_id == "w2"
        # the original holder discovers the theft on its next heartbeat
        with pytest.raises(LeaseLost):
            leases.renew(stale)
        with pytest.raises(LeaseLost):
            leases.release(stale)

    def test_release_frees_the_job(self, leases):
        lease = leases.acquire("job-a", "w1")
        leases.release(lease)
        assert leases.read("job-a") is None
        assert leases.acquire("job-a", "w2") is not None

    def test_live_lease_is_not_stolen(self, leases, clock):
        leases.acquire("job-a", "w1")
        clock.advance(TTL - 1)
        assert leases.acquire("job-a", "w2") is None

    def test_partition_live_vs_expired(self, leases, clock):
        leases.acquire("job-a", "w1")
        clock.advance(TTL + 1)
        leases.acquire("job-b", "w2")
        live, expired = leases.partition()
        assert [lease.job_id for lease in live] == ["job-b"]
        assert [lease.job_id for lease in expired] == ["job-a"]

    def test_torn_lease_file_reads_as_absent(self, leases):
        lease = leases.acquire("job-a", "w1")
        leases.path("job-a").write_text('{"job_id": "job-a", "tor')
        assert leases.read("job-a") is None
        assert not leases.verify(lease)
        # and the slot is claimable again
        assert leases.acquire("job-a", "w2") is not None

    def test_remove_is_idempotent(self, leases):
        leases.acquire("job-a", "w1")
        leases.remove("job-a")
        leases.remove("job-a")
        assert leases.read("job-a") is None

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseDirectory(tmp_path, ttl=0.0)


class TestLeaseSafetyProperty:
    @given(events=lease_event_sequences(ttl=TTL))
    @settings(max_examples=60, deadline=None)
    def test_no_job_is_ever_owned_twice(self, tmp_path_factory, events):
        """At every instant, at most one verified live lease per job."""
        root = tmp_path_factory.mktemp("lease-prop")
        clock = ManualClock()
        leases = LeaseDirectory(root, ttl=TTL, now_fn=clock)
        held = {}  # (worker, job) -> Lease the worker believes it holds
        for op, worker, job in events:
            if op == "advance":
                clock.advance(job)  # third slot carries seconds
            elif op == "remove":
                leases.remove(job)
            elif op == "acquire":
                lease = leases.acquire(job, worker)
                if lease is not None:
                    held[(worker, job)] = lease
            elif op == "renew":
                lease = held.get((worker, job))
                if lease is not None:
                    try:
                        held[(worker, job)] = leases.renew(lease)
                    except LeaseLost:
                        del held[(worker, job)]
            elif op == "release":
                lease = held.pop((worker, job), None)
                if lease is not None:
                    try:
                        leases.release(lease)
                    except LeaseLost:
                        pass
            # THE invariant: one verified live owner per job, ever.
            now = clock.now
            owners = {}
            for (holder, job_id), lease in held.items():
                if lease.expires > now and leases.verify(lease):
                    owners.setdefault(job_id, []).append(holder)
            for job_id, holders in owners.items():
                assert len(holders) <= 1, (
                    f"job {job_id} owned by {holders} simultaneously"
                )
