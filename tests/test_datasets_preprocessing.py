"""Unit tests for repro.datasets.preprocessing."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, train_val_test_split
from repro.datasets.preprocessing import (
    MinMaxScaler,
    StandardScaler,
    one_hot,
    prepare_split,
    quantize_inputs,
)


class TestMinMaxScaler:
    def test_transform_range(self):
        data = np.random.default_rng(0).normal(size=(50, 3)) * 10
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_training_extremes_map_to_bounds(self):
        data = np.array([[0.0], [5.0], [10.0]])
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.reshape(-1), [0.0, 0.5, 1.0])

    def test_out_of_range_values_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        scaled = scaler.transform(np.array([[-5.0], [3.0]]))
        np.testing.assert_allclose(scaled.reshape(-1), [0.0, 1.0])

    def test_constant_column_handled(self):
        data = np.ones((10, 2))
        scaled = MinMaxScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.zeros(5))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        data = np.random.default_rng(1).normal(loc=5.0, scale=3.0, size=(500, 2))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), [0.0, 0.0], atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), [1.0, 1.0], atol=1e-9)

    def test_constant_column_handled(self):
        scaled = StandardScaler().fit_transform(np.ones((10, 1)))
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestQuantizeInputs:
    def test_values_on_grid(self):
        data = np.random.default_rng(2).random((100, 3))
        quantized = quantize_inputs(data, bits=4)
        levels = quantized * 15
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-9)

    def test_number_of_distinct_levels(self):
        data = np.linspace(0, 1, 1000).reshape(-1, 1)
        quantized = quantize_inputs(data, bits=3)
        assert len(np.unique(quantized)) == 8

    def test_idempotent(self):
        data = np.random.default_rng(3).random((20, 2))
        once = quantize_inputs(data, bits=5)
        np.testing.assert_array_equal(once, quantize_inputs(once, bits=5))

    def test_error_bounded_by_half_lsb(self):
        data = np.random.default_rng(4).random((200, 1))
        quantized = quantize_inputs(data, bits=4)
        assert np.max(np.abs(quantized - data)) <= 0.5 / 15 + 1e-12

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantize_inputs(np.array([[1.5]]), bits=4)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_inputs(np.zeros((2, 2)), bits=0)


class TestOneHot:
    def test_shape_and_values(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_infers_class_count(self):
        assert one_hot(np.array([0, 3])).shape == (2, 4)

    def test_empty_input(self):
        assert one_hot(np.array([]), 3).shape == (0, 3)


class TestPrepareSplit:
    @pytest.fixture
    def split(self):
        generator = np.random.default_rng(5)
        data = Dataset(
            features=generator.normal(size=(120, 4)) * 7 + 3,
            labels=generator.integers(0, 3, size=120),
            name="prep",
        )
        return train_val_test_split(data, seed=0)

    def test_all_subsets_in_unit_range(self, split):
        prepared = prepare_split(split, input_bits=4)
        for subset in (prepared.train, prepared.validation, prepared.test):
            assert subset.features.min() >= 0.0
            assert subset.features.max() <= 1.0

    def test_scaler_fitted_on_train_only(self, split):
        prepared = prepare_split(split, input_bits=None)
        # The training subset must span the full [0, 1] range in every column.
        assert np.allclose(prepared.train.features.min(axis=0), 0.0)
        assert np.allclose(prepared.train.features.max(axis=0), 1.0)

    def test_input_bits_none_skips_quantization(self, split):
        prepared = prepare_split(split, input_bits=None)
        distinct = len(np.unique(prepared.train.features))
        assert distinct > 16  # not collapsed to a 4-bit grid

    def test_input_bits_limits_levels(self, split):
        prepared = prepare_split(split, input_bits=3)
        assert len(np.unique(prepared.train.features)) <= 8
        assert prepared.input_bits == 3

    def test_labels_untouched(self, split):
        prepared = prepare_split(split)
        np.testing.assert_array_equal(prepared.train.labels, split.train.labels)
