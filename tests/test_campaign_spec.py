"""Campaign spec parsing, validation, grid expansion and sharding."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    JobSpec,
    SearchSpec,
    load_spec,
    parse_shard,
    select_shard,
)
from repro.core import PipelineConfig
from repro.core.config import fast_config
from repro.datasets import resolve_dataset_names


def _spec_dict(**overrides):
    base = {
        "name": "unit",
        "datasets": ["seeds", "redwine"],
        "seeds": [0, 1],
        "pipeline": {"train_epochs": 3, "n_samples": 120},
        "searches": [
            {"algorithm": "ga", "population_size": 6, "n_generations": 2},
            {"algorithm": "random", "n_evaluations": 4},
        ],
    }
    base.update(overrides)
    return base


class TestResolveDatasetNames:
    def test_all_expands_to_paper_datasets(self):
        assert resolve_dataset_names("all") == ("whitewine", "redwine", "pendigits", "seeds")
        assert resolve_dataset_names(None) == ("whitewine", "redwine", "pendigits", "seeds")

    def test_accepts_paper_spellings_and_dedupes(self):
        assert resolve_dataset_names(["WhiteWine", "whitewine", "Seeds"]) == (
            "whitewine",
            "seeds",
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_dataset_names(["not-a-dataset"])

    def test_empty_selection_raises(self):
        with pytest.raises(ValueError):
            resolve_dataset_names([])


class TestSearchSpec:
    def test_defaults_name_to_algorithm(self):
        search = SearchSpec.from_dict({"algorithm": "random", "n_evaluations": 8})
        assert search.name == "random"
        assert search.param_dict() == {"n_evaluations": 8}

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="Unknown search algorithm"):
            SearchSpec.from_dict({"algorithm": "simulated-annealing"})

    def test_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="Unknown parameters"):
            SearchSpec.from_dict({"algorithm": "random", "population_size": 8})

    @pytest.mark.parametrize("bad_name", ["ga/v2", "..", "a b", ".hidden", ""])
    def test_rejects_path_unsafe_names(self, bad_name):
        # Search names become job directory components.
        with pytest.raises(ValueError, match="invalid"):
            SearchSpec.from_dict({"algorithm": "ga", "name": bad_name})

    def test_roundtrips_through_dict(self):
        search = SearchSpec.from_dict(
            {"algorithm": "grid", "name": "coarse", "bit_choices": [3, 4]}
        )
        assert SearchSpec.from_dict(search.as_dict()) == search


class TestCampaignSpec:
    def test_expansion_is_the_full_grid_in_order(self):
        spec = CampaignSpec.from_dict(_spec_dict())
        jobs = spec.expand()
        assert [job.job_id for job in jobs] == [
            "seeds-ga-s0",
            "seeds-ga-s1",
            "seeds-random-s0",
            "seeds-random-s1",
            "redwine-ga-s0",
            "redwine-ga-s1",
            "redwine-random-s0",
            "redwine-random-s1",
        ]
        assert all(job.pipeline_overrides() == {"train_epochs": 3, "n_samples": 120}
                   for job in jobs)

    def test_duplicate_search_names_rejected(self):
        data = _spec_dict(searches=[
            {"algorithm": "random", "n_evaluations": 2},
            {"algorithm": "random", "n_evaluations": 4},
        ])
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec.from_dict(data)

    def test_unknown_pipeline_override_rejected(self):
        with pytest.raises(ValueError, match="Unknown pipeline overrides"):
            CampaignSpec.from_dict(_spec_dict(pipeline={"not_a_field": 1}))

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ValueError, match="Unknown campaign fields"):
            CampaignSpec.from_dict(_spec_dict(extra_field=1))

    def test_duplicate_seeds_are_deduplicated(self):
        # Duplicate seeds would collide on job_id and run jobs twice.
        spec = CampaignSpec.from_dict(_spec_dict(seeds=[0, 0, 1]))
        assert spec.seeds == (0, 1)
        job_ids = [job.job_id for job in spec.expand()]
        assert len(job_ids) == len(set(job_ids))

    def test_fingerprint_stable_and_sensitive(self):
        spec_a = CampaignSpec.from_dict(_spec_dict())
        spec_b = CampaignSpec.from_dict(_spec_dict())
        spec_c = CampaignSpec.from_dict(_spec_dict(seeds=[0]))
        assert spec_a.fingerprint() == spec_b.fingerprint()
        assert spec_a.fingerprint() != spec_c.fingerprint()

    def test_roundtrips_through_dict(self):
        spec = CampaignSpec.from_dict(_spec_dict())
        assert CampaignSpec.from_dict(spec.as_dict()) == spec


class TestJobSpec:
    def test_pipeline_config_applies_overrides(self):
        spec = CampaignSpec.from_dict(_spec_dict())
        config = spec.expand()[0].pipeline_config()
        assert isinstance(config, PipelineConfig)
        assert config.dataset == "seeds"
        assert config.train_epochs == 3
        assert config.n_samples == 120
        assert config.seed == 0

    def test_fast_override_starts_from_fast_config(self):
        spec = CampaignSpec.from_dict(
            _spec_dict(pipeline={"fast": True, "finetune_epochs": 2})
        )
        config = spec.expand()[1].pipeline_config()  # seeds, seed 1
        reference = fast_config("seeds", seed=1)
        assert config.train_epochs == reference.train_epochs
        assert config.bit_range == reference.bit_range
        assert config.finetune_epochs == 2  # override on top of fast_config

    def test_roundtrips_through_dict(self):
        job = CampaignSpec.from_dict(_spec_dict()).expand()[0]
        assert JobSpec.from_dict(job.as_dict()) == job


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard(None) is None
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("1/3") == (1, 3)

    @pytest.mark.parametrize("bad", ["2/2", "-1/2", "1", "a/b", "1/0"])
    def test_parse_shard_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_shard(bad)

    def test_select_shard_partitions_jobs(self):
        jobs = CampaignSpec.from_dict(_spec_dict()).expand()
        shard_0 = select_shard(jobs, (0, 2))
        shard_1 = select_shard(jobs, (1, 2))
        assert len(shard_0) + len(shard_1) == len(jobs)
        assert {job.job_id for job in shard_0} | {job.job_id for job in shard_1} == {
            job.job_id for job in jobs
        }
        assert not {job.job_id for job in shard_0} & {job.job_id for job in shard_1}
        assert select_shard(jobs, None) == jobs


class TestLoadSpec:
    def test_loads_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_spec_dict()))
        assert load_spec(path) == CampaignSpec.from_dict(_spec_dict())

    def test_loads_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(_spec_dict()))
        assert load_spec(path) == CampaignSpec.from_dict(_spec_dict())

    def test_non_mapping_spec_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="mapping"):
            load_spec(path)
