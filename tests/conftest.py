"""Shared fixtures for the test suite.

Expensive artefacts (trained baselines, prepared pipelines) are session-scoped
so the whole suite stays fast: the tiny Seeds classifier trains in well under
a second and is reused by every integration test that needs a realistic
trained model.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.core import MinimizationPipeline, PipelineConfig
from repro.core.backend import get_backend
from repro.datasets import load_dataset, prepare_split, train_val_test_split
from repro.hardware import egt_library
from repro.nn import build_mlp, train_classifier


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need random data."""
    return np.random.default_rng(1234)


@pytest.fixture(
    params=[
        pytest.param("numpy", id="numpy"),
        pytest.param(
            "torch",
            id="torch",
            marks=pytest.mark.skipif(
                importlib.util.find_spec("torch") is None,
                reason="torch not installed (optional 'torch' extra)",
            ),
        ),
    ]
)
def backend(request):
    """Every array backend usable in this environment, as a resolved instance.

    Parity tests written against this fixture run on the numpy reference
    always and on torch whenever the optional extra is installed (the CI
    torch job); elsewhere the torch case skips cleanly.
    """
    return get_backend(request.param)


@pytest.fixture(scope="session")
def egt():
    """The EGT printed technology library."""
    return egt_library()


@pytest.fixture(scope="session")
def seeds_data():
    """Prepared (scaled, input-quantized) split of the Seeds stand-in dataset."""
    dataset = load_dataset("seeds")
    split = train_val_test_split(dataset, seed=0)
    return prepare_split(split, input_bits=4)


@pytest.fixture(scope="session")
def seeds_model(seeds_data):
    """A trained Seeds classifier (7-4-3 MLP) shared across tests.

    Tests must NOT mutate this model directly — clone it first.
    """
    model = build_mlp(7, (4,), 3, seed=0)
    train_classifier(
        model,
        seeds_data.train.features,
        seeds_data.train.labels,
        seeds_data.validation.features,
        seeds_data.validation.labels,
        epochs=60,
        batch_size=16,
        seed=0,
    )
    return model


@pytest.fixture(scope="session")
def fast_pipeline_config() -> PipelineConfig:
    """A reduced-cost pipeline configuration for integration tests."""
    return PipelineConfig(
        dataset="seeds",
        seed=0,
        train_epochs=40,
        finetune_epochs=5,
        bit_range=(2, 4, 6),
        sparsity_range=(0.2, 0.5),
        cluster_range=(2, 4),
    )


@pytest.fixture(scope="session")
def prepared_pipeline(fast_pipeline_config):
    """A prepared (trained + baseline-synthesized) pipeline on Seeds."""
    pipeline = MinimizationPipeline(fast_pipeline_config)
    pipeline.prepare()
    return pipeline


@pytest.fixture
def tiny_problem():
    """Fixture view of :func:`tiny_classification_problem` with the default seed.

    Tests must use this fixture rather than ``from conftest import ...``:
    a plain ``conftest`` import resolves to whichever conftest directory
    (tests/ or benchmarks/) pytest put on ``sys.path`` first.
    """
    return tiny_classification_problem(seed=0)


def tiny_classification_problem(seed: int = 0, n_samples: int = 120):
    """A small, well-separated 2-class problem usable for quick training tests."""
    generator = np.random.default_rng(seed)
    class0 = generator.normal(loc=-1.5, scale=0.6, size=(n_samples // 2, 4))
    class1 = generator.normal(loc=1.5, scale=0.6, size=(n_samples - n_samples // 2, 4))
    features = np.vstack([class0, class1])
    labels = np.array([0] * (n_samples // 2) + [1] * (n_samples - n_samples // 2))
    order = generator.permutation(n_samples)
    return features[order], labels[order]
