"""Integration tests for the end-to-end minimization pipeline (fast settings)."""

import numpy as np
import pytest

from repro.core import (
    MinimizationPipeline,
    PipelineConfig,
    evaluate_dataset,
    fast_config,
    pareto_front,
)
from repro.core.config import (
    DEFAULT_BIT_RANGE,
    DEFAULT_CLUSTER_RANGE,
    DEFAULT_SPARSITY_RANGE,
)


class TestPipelineConfig:
    def test_defaults_match_paper_ranges(self):
        config = PipelineConfig(dataset="whitewine")
        assert tuple(config.bit_range) == (2, 3, 4, 5, 6, 7)
        assert tuple(config.sparsity_range) == (0.2, 0.3, 0.4, 0.5, 0.6)
        assert config.baseline_weight_bits == 8
        assert config.input_bits == 4
        assert config.max_accuracy_loss == 0.05

    def test_module_level_defaults_consistent(self):
        config = PipelineConfig(dataset="seeds")
        assert tuple(config.bit_range) == DEFAULT_BIT_RANGE
        assert tuple(config.sparsity_range) == DEFAULT_SPARSITY_RANGE
        assert tuple(config.cluster_range) == DEFAULT_CLUSTER_RANGE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_bits": 0},
            {"baseline_weight_bits": 1},
            {"finetune_epochs": -1},
            {"max_accuracy_loss": 0.0},
            {"bit_range": (1, 4)},
            {"sparsity_range": (0.5, 1.0)},
            {"cluster_range": (0,)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(dataset="seeds", **kwargs)

    def test_fast_config_reduces_cost(self):
        config = fast_config("whitewine")
        reference = PipelineConfig(dataset="whitewine")
        assert config.finetune_epochs < reference.finetune_epochs
        assert len(config.bit_range) < len(reference.bit_range)
        assert config.n_samples is not None


class TestPreparation:
    def test_prepare_builds_trained_baseline(self, prepared_pipeline):
        prepared = prepared_pipeline.prepare()
        assert prepared.baseline_accuracy > 0.7     # seeds is an easy dataset
        assert prepared.baseline_point.technique == "baseline"
        assert prepared.baseline_point.area > 0
        assert prepared.metadata["dataset"] == "seeds"
        assert prepared.baseline_model.topology() == [7, 4, 3]

    def test_prepare_is_cached(self, prepared_pipeline):
        first = prepared_pipeline.prepare()
        second = prepared_pipeline.prepare()
        assert first is second

    def test_config_dataset_mismatch_rejected(self, fast_pipeline_config):
        with pytest.raises(ValueError):
            evaluate_dataset("whitewine", config=fast_pipeline_config)


class TestSweeps:
    def test_unknown_technique_rejected(self, prepared_pipeline):
        with pytest.raises(ValueError):
            prepared_pipeline.run_technique("distillation")

    def test_run_produces_points_for_each_technique(self, prepared_pipeline):
        sweep = prepared_pipeline.run()
        config = prepared_pipeline.config
        assert len(sweep.by_technique("quantization")) == len(config.bit_range)
        assert len(sweep.by_technique("pruning")) == len(config.sparsity_range)
        assert len(sweep.by_technique("clustering")) == len(config.cluster_range)
        assert sweep.dataset == "seeds"

    def test_all_points_have_positive_area_and_valid_accuracy(self, prepared_pipeline):
        sweep = prepared_pipeline.run()
        for point in sweep.points:
            assert point.area > 0
            assert 0.0 <= point.accuracy <= 1.0

    def test_minimized_designs_are_smaller_than_baseline(self, prepared_pipeline):
        sweep = prepared_pipeline.run()
        baseline_area = sweep.baseline.area
        assert all(p.area <= baseline_area * 1.01 for p in sweep.points)

    def test_quantization_dominates_on_area(self, prepared_pipeline):
        # The headline qualitative claim of the paper: the quantization front
        # reaches smaller areas than pruning or clustering at modest loss.
        sweep = prepared_pipeline.run()
        gains = prepared_pipeline.area_gains(sweep)
        assert gains["quantization"] is not None
        if gains["pruning"] is not None:
            assert gains["quantization"] >= gains["pruning"]

    def test_pareto_helper_filters_by_technique(self, prepared_pipeline):
        sweep = prepared_pipeline.run()
        quantization_front = prepared_pipeline.pareto(sweep, "quantization")
        overall_front = prepared_pipeline.pareto(sweep)
        assert all(p.technique == "quantization" for p in quantization_front)
        assert len(overall_front) >= 1
        assert overall_front == pareto_front(sweep.points)

    def test_area_gains_keys(self, prepared_pipeline):
        sweep = prepared_pipeline.run()
        gains = prepared_pipeline.area_gains(sweep)
        assert set(gains) == {"quantization", "pruning", "clustering"}


class TestDeterminism:
    def test_same_seed_same_baseline(self):
        config = PipelineConfig(
            dataset="seeds", seed=3, train_epochs=20, finetune_epochs=2,
            bit_range=(4,), sparsity_range=(0.3,), cluster_range=(2,),
        )
        first = MinimizationPipeline(config).prepare()
        second = MinimizationPipeline(config).prepare()
        assert first.baseline_accuracy == pytest.approx(second.baseline_accuracy)
        assert first.baseline_point.area == pytest.approx(second.baseline_point.area)
        np.testing.assert_array_equal(
            first.baseline_model.dense_layers[0].weights,
            second.baseline_model.dense_layers[0].weights,
        )
