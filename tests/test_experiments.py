"""Integration tests for the experiment drivers (Figure 1, Figure 2, summary, ablations).

These use aggressively reduced configurations so the whole file runs in a few
seconds while still exercising the full reproduction path end to end.
"""

import pytest

from repro.core import PipelineConfig
from repro.experiments import (
    PAPER_HEADLINE_GAINS,
    baseline_for,
    baseline_table,
    csd_vs_binary,
    expected_topologies,
    figure1_summary_rows,
    input_bitwidth_sensitivity,
    qat_vs_ptq,
    run_figure1_panel,
    run_figure2,
    summarize_sweeps,
)
from repro.search import GAConfig

TINY_SEEDS = PipelineConfig(
    dataset="seeds",
    seed=0,
    train_epochs=40,
    finetune_epochs=4,
    bit_range=(2, 4, 8),
    sparsity_range=(0.3, 0.6),
    cluster_range=(2,),
)


@pytest.fixture(scope="module")
def seeds_panel():
    return run_figure1_panel("seeds", config=TINY_SEEDS)


class TestFigure1:
    def test_panel_contains_all_techniques(self, seeds_panel):
        assert set(seeds_panel.fronts) == {"quantization", "pruning", "clustering"}
        assert set(seeds_panel.area_gains) == {"quantization", "pruning", "clustering"}

    def test_fronts_are_normalized(self, seeds_panel):
        for points in seeds_panel.fronts.values():
            for point in points:
                assert point.normalized_area <= 1.05
                assert 0.0 < point.normalized_accuracy <= 1.2

    def test_quantization_best_gain(self, seeds_panel):
        gains = seeds_panel.area_gains
        assert gains["quantization"] is not None
        assert gains["quantization"] > 1.5

    def test_format_rows_readable(self, seeds_panel):
        rows = seeds_panel.format_rows()
        assert rows[0].startswith("# seeds")
        assert any("quantization" in row for row in rows)

    def test_summary_rows_helper(self, seeds_panel):
        rows = figure1_summary_rows({"seeds": seeds_panel})
        assert rows[0].startswith("dataset")
        assert any("seeds" in row for row in rows[1:])


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure2(self):
        return run_figure2(
            "seeds",
            config=TINY_SEEDS,
            ga_config=GAConfig(
                population_size=6, n_generations=2, finetune_epochs=2, seed=0,
                bit_choices=(2, 4, 8), sparsity_choices=(0.0, 0.3, 0.6), cluster_choices=(0, 2),
            ),
        )

    def test_combined_front_present(self, figure2):
        assert "combined" in figure2.fronts
        assert len(figure2.fronts["combined"]) >= 1
        assert figure2.ga_result.n_evaluations >= 6

    def test_combined_not_worse_than_standalone(self, figure2):
        gains = figure2.area_gains
        combined = gains.get("combined")
        assert combined is not None
        standalone = [g for k, g in gains.items() if k != "combined" and g is not None]
        assert combined >= max(standalone) * 0.8

    def test_format_rows(self, figure2):
        rows = figure2.format_rows()
        assert any("gain@5%loss" in row for row in rows)


class TestSummary:
    def test_paper_headline_values_recorded(self):
        assert PAPER_HEADLINE_GAINS == {
            "quantization": 5.0,
            "pruning": 2.8,
            "clustering": 3.5,
            "combined": 8.0,
        }

    def test_summarize_sweeps(self, seeds_panel):
        summary = summarize_sweeps({"seeds": seeds_panel.sweep})
        assert "quantization" in summary.measured
        assert summary.per_dataset["seeds"]["quantization"] is not None
        rows = summary.format_rows()
        assert rows[0].startswith("technique")
        assert len(rows) == 1 + len(PAPER_HEADLINE_GAINS)


class TestBaselines:
    def test_baseline_row_fields(self):
        row = baseline_for("seeds", config=TINY_SEEDS)
        assert row.dataset == "seeds"
        assert row.topology == [7, 4, 3]
        assert row.area > 0
        assert row.n_multipliers > 0
        assert "acc=" in row.format()

    def test_baseline_table_fast(self):
        table = baseline_table(datasets=("seeds",), fast=True)
        assert set(table) == {"seeds"}

    def test_expected_topologies_match_design_doc(self):
        topologies = expected_topologies()
        assert topologies["whitewine"] == [11, 8, 7]
        assert topologies["redwine"] == [11, 8, 6]
        assert topologies["pendigits"] == [16, 10, 10]
        assert topologies["seeds"] == [7, 4, 3]


class TestAblations:
    def test_csd_vs_binary_csd_never_larger(self):
        result = csd_vs_binary("seeds", config=TINY_SEEDS)
        assert result.values["csd"] <= result.values["binary"] + 1e-9
        assert result.values["binary_over_csd"] >= 1.0

    def test_input_bitwidth_monotone(self):
        result = input_bitwidth_sensitivity(
            "seeds", input_bit_range=(3, 5), config=TINY_SEEDS
        )
        assert result.values["input_bits_3"] < result.values["input_bits_5"]

    def test_qat_vs_ptq_qat_not_worse_at_2_bits(self):
        result = qat_vs_ptq("seeds", bit_range=(2,), config=TINY_SEEDS)
        assert result.values["qat_2b_accuracy"] >= result.values["ptq_2b_accuracy"] - 0.05

    def test_ablation_result_formatting(self):
        result = csd_vs_binary("seeds", config=TINY_SEEDS)
        rows = result.format_rows()
        assert rows[0].startswith("# ablation")
        assert len(rows) == 1 + len(result.values)
