"""Unit tests for repro.nn.losses (values and gradient checks)."""

import numpy as np
import pytest

from repro.nn.losses import (
    CategoricalCrossEntropy,
    HingeLoss,
    MeanAbsoluteError,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    available_losses,
    get_loss,
)


def one_hot(labels, n_classes):
    out = np.zeros((len(labels), n_classes))
    out[np.arange(len(labels)), labels] = 1.0
    return out


def numerical_gradient(loss, predictions, targets, epsilon=1e-6):
    grad = np.zeros_like(predictions)
    flat_p = predictions.reshape(-1)
    flat_g = grad.reshape(-1)
    for index in range(flat_p.size):
        original = flat_p[index]
        flat_p[index] = original + epsilon
        plus = loss.forward(predictions, targets)
        flat_p[index] = original - epsilon
        minus = loss.forward(predictions, targets)
        flat_p[index] = original
        flat_g[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestMeanSquaredError:
    def test_zero_for_perfect_prediction(self):
        predictions = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert MeanSquaredError().forward(predictions, predictions) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError().forward(np.array([1.0, 3.0]), np.array([0.0, 1.0]))
        assert loss == pytest.approx((1.0 + 4.0) / 2.0)

    def test_gradient_matches_numerical(self):
        generator = np.random.default_rng(0)
        predictions = generator.normal(size=(5, 3))
        targets = generator.normal(size=(5, 3))
        analytic = MeanSquaredError().backward(predictions, targets)
        numeric = numerical_gradient(MeanSquaredError(), predictions.copy(), targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestMeanAbsoluteError:
    def test_known_value(self):
        loss = MeanAbsoluteError().forward(np.array([2.0, -1.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(1.5)

    def test_gradient_sign(self):
        predictions = np.array([2.0, -3.0])
        targets = np.array([0.0, 0.0])
        grad = MeanAbsoluteError().backward(predictions, targets)
        assert grad[0] > 0 and grad[1] < 0


class TestCrossEntropyLosses:
    def test_categorical_cross_entropy_perfect_prediction(self):
        targets = one_hot([0, 1], 2)
        loss = CategoricalCrossEntropy().forward(targets, targets)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_categorical_cross_entropy_uniform_prediction(self):
        predictions = np.full((4, 4), 0.25)
        targets = one_hot([0, 1, 2, 3], 4)
        loss = CategoricalCrossEntropy().forward(predictions, targets)
        assert loss == pytest.approx(np.log(4.0))

    def test_softmax_cross_entropy_matches_composition(self):
        generator = np.random.default_rng(1)
        logits = generator.normal(size=(6, 5))
        targets = one_hot(generator.integers(0, 5, size=6), 5)
        fused = SoftmaxCrossEntropy().forward(logits, targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        composed = CategoricalCrossEntropy().forward(probabilities, targets)
        assert fused == pytest.approx(composed, rel=1e-9)

    def test_softmax_cross_entropy_gradient(self):
        generator = np.random.default_rng(2)
        logits = generator.normal(size=(4, 3))
        targets = one_hot(generator.integers(0, 3, size=4), 3)
        analytic = SoftmaxCrossEntropy().backward(logits, targets)
        numeric = numerical_gradient(SoftmaxCrossEntropy(), logits.copy(), targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_softmax_cross_entropy_stable_for_large_logits(self):
        logits = np.array([[1e4, -1e4, 0.0]])
        targets = one_hot([0], 3)
        loss = SoftmaxCrossEntropy().forward(logits, targets)
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-6)


class TestHingeLoss:
    def test_zero_when_margin_satisfied(self):
        scores = np.array([[5.0, 0.0, 0.0]])
        targets = one_hot([0], 3)
        assert HingeLoss().forward(scores, targets) == pytest.approx(0.0)

    def test_positive_when_margin_violated(self):
        scores = np.array([[0.0, 0.5, 0.0]])
        targets = one_hot([0], 3)
        assert HingeLoss().forward(scores, targets) > 0.0

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            HingeLoss(margin=0.0)

    def test_gradient_matches_numerical(self):
        generator = np.random.default_rng(3)
        scores = generator.normal(size=(5, 4))
        targets = one_hot(generator.integers(0, 4, size=5), 4)
        analytic = HingeLoss().backward(scores, targets)
        numeric = numerical_gradient(HingeLoss(), scores.copy(), targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestRegistry:
    def test_every_name_instantiates(self):
        for name in available_losses():
            assert get_loss(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_loss("focal")

    def test_aliases_map_to_same_class(self):
        assert type(get_loss("mse")) is type(get_loss("mean_squared_error"))
