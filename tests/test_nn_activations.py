"""Unit tests for repro.nn.activations, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.activations import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    available_activations,
    get_activation,
)


def numerical_gradient(activation, x, grad_output, epsilon=1e-6):
    """Central-difference gradient of sum(forward(x) * grad_output)."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_x.size):
        original = flat_x[index]
        flat_x[index] = original + epsilon
        plus = np.sum(activation.forward(x) * grad_output)
        flat_x[index] = original - epsilon
        minus = np.sum(activation.forward(x) * grad_output)
        flat_x[index] = original
        flat_grad[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestForwardValues:
    def test_identity_passthrough(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(Identity().forward(x), x)

    def test_relu_clamps_negatives(self):
        x = np.array([-1.0, -0.1, 0.0, 0.5, 2.0])
        np.testing.assert_array_equal(
            ReLU().forward(x), np.array([0.0, 0.0, 0.0, 0.5, 2.0])
        )

    def test_leaky_relu_negative_slope(self):
        x = np.array([-2.0, 4.0])
        out = LeakyReLU(alpha=0.1).forward(x)
        np.testing.assert_allclose(out, [-0.2, 4.0])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.5)

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-10, 10, 101)
        out = Sigmoid().forward(x)
        assert np.all((out > 0) & (out < 1))
        np.testing.assert_allclose(out + out[::-1], np.ones_like(out), atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 20)
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(8, 5))
        out = Softmax().forward(x)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(8), atol=1e-12)

    def test_softmax_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(
            Softmax().forward(x), Softmax().forward(x + 100.0), atol=1e-12
        )

    def test_softmax_large_logits_stable(self):
        out = Softmax().forward(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], atol=1e-9)


class TestBackwardGradients:
    @pytest.mark.parametrize(
        "activation",
        [Identity(), LeakyReLU(0.05), Sigmoid(), Tanh(), Softmax()],
        ids=lambda a: type(a).__name__,
    )
    def test_backward_matches_numerical_gradient(self, activation):
        generator = np.random.default_rng(11)
        x = generator.normal(size=(4, 6))
        grad_output = generator.normal(size=(4, 6))
        analytic = activation.backward(x, grad_output)
        numeric = numerical_gradient(activation, x.copy(), grad_output)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_relu_gradient_away_from_kink(self):
        # ReLU's subgradient at exactly 0 is implementation-defined, so check
        # only points away from the kink.
        x = np.array([[-2.0, -0.5, 0.5, 2.0]])
        grad_output = np.ones_like(x)
        analytic = ReLU().backward(x, grad_output)
        np.testing.assert_array_equal(analytic, [[0.0, 0.0, 1.0, 1.0]])


class TestRegistry:
    def test_every_name_instantiates(self):
        for name in available_activations():
            activation = get_activation(name)
            out = activation(np.array([0.1, -0.2]))
            assert out.shape == (2,)

    def test_linear_is_alias_for_identity(self):
        assert isinstance(get_activation("linear"), Identity)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_activation("swishify")

    def test_names_used_by_circuit_generator_exist(self):
        # The bespoke generator special-cases these names.
        assert get_activation("relu").name == "relu"
        assert get_activation("leaky_relu").name == "leaky_relu"
