"""Unit tests for repro.nn.layers: Dense hooks, gradients, Dropout, summaries."""

import numpy as np
import pytest

from repro.nn.layers import ActivationLayer, Dense, Dropout, layer_summary


@pytest.fixture
def dense():
    return Dense(4, 3, rng=np.random.default_rng(0))


class TestDenseForward:
    def test_output_shape(self, dense):
        out = dense.forward(np.zeros((7, 4)))
        assert out.shape == (7, 3)

    def test_1d_input_promoted_to_batch(self, dense):
        out = dense.forward(np.zeros(4))
        assert out.shape == (1, 3)

    def test_wrong_feature_count_raises(self, dense):
        with pytest.raises(ValueError):
            dense.forward(np.zeros((2, 5)))

    def test_linear_in_inputs(self, dense):
        x = np.random.default_rng(1).normal(size=(5, 4))
        y = dense.forward(2.0 * x) - dense.forward(np.zeros((5, 4)))
        expected = 2.0 * (dense.forward(x) - dense.forward(np.zeros((5, 4))))
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_bias_disabled(self):
        layer = Dense(3, 2, use_bias=False, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((1, 3)))
        np.testing.assert_array_equal(out, np.zeros((1, 2)))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)


class TestDenseHooks:
    def test_mask_zeroes_connections(self, dense):
        mask = np.ones_like(dense.weights)
        mask[0, :] = 0.0
        dense.mask = mask
        assert np.all(dense.effective_weights()[0, :] == 0.0)

    def test_mask_blocks_gradient(self, dense):
        mask = np.zeros_like(dense.weights)
        dense.mask = mask
        x = np.ones((2, 4))
        dense.forward(x, training=True)
        dense.backward(np.ones((2, 3)))
        np.testing.assert_array_equal(dense.grad_weights, np.zeros_like(dense.weights))

    def test_quantizer_applied_in_forward(self, dense):
        dense.weight_quantizer = lambda w: np.zeros_like(w)
        dense.bias_quantizer = lambda b: np.zeros_like(b)
        out = dense.forward(np.ones((1, 4)))
        np.testing.assert_array_equal(out, np.zeros((1, 3)))

    def test_quantizer_does_not_touch_shadow_weights(self, dense):
        original = dense.weights.copy()
        dense.weight_quantizer = lambda w: np.round(w)
        dense.forward(np.ones((1, 4)))
        np.testing.assert_array_equal(dense.weights, original)

    def test_sparsity_reflects_mask(self, dense):
        assert dense.sparsity() == 0.0
        mask = np.ones_like(dense.weights)
        mask[:, 0] = 0.0
        dense.mask = mask
        assert dense.sparsity() == pytest.approx(1.0 / 3.0)


class TestDenseBackward:
    def test_backward_requires_training_forward(self, dense):
        with pytest.raises(RuntimeError):
            dense.backward(np.ones((1, 3)))

    def test_gradients_match_numerical(self):
        layer = Dense(3, 2, rng=np.random.default_rng(5))
        x = np.random.default_rng(6).normal(size=(4, 3))
        grad_out = np.random.default_rng(7).normal(size=(4, 2))
        layer.forward(x, training=True)
        layer.backward(grad_out)

        epsilon = 1e-6
        numeric_w = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                layer.weights[i, j] += epsilon
                plus = np.sum(layer.forward(x) * grad_out)
                layer.weights[i, j] -= 2 * epsilon
                minus = np.sum(layer.forward(x) * grad_out)
                layer.weights[i, j] += epsilon
                numeric_w[i, j] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(layer.grad_weights, numeric_w, atol=1e-5)

    def test_input_gradient_shape(self, dense):
        x = np.ones((6, 4))
        dense.forward(x, training=True)
        grad_in = dense.backward(np.ones((6, 3)))
        assert grad_in.shape == (6, 4)

    def test_bias_gradient_is_column_sum(self, dense):
        x = np.random.default_rng(2).normal(size=(5, 4))
        grad_out = np.random.default_rng(3).normal(size=(5, 3))
        dense.forward(x, training=True)
        dense.backward(grad_out)
        np.testing.assert_allclose(dense.grad_bias, grad_out.sum(axis=0))


class TestSetWeights:
    def test_set_weights_roundtrip(self, dense):
        new_weights = np.full_like(dense.weights, 0.5)
        new_bias = np.full_like(dense.bias, -1.0)
        dense.set_weights(new_weights, new_bias)
        np.testing.assert_array_equal(dense.weights, new_weights)
        np.testing.assert_array_equal(dense.bias, new_bias)

    def test_shape_mismatch_rejected(self, dense):
        with pytest.raises(ValueError):
            dense.set_weights(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            dense.set_weights(np.zeros_like(dense.weights), np.zeros(99))


class TestActivationLayerAndDropout:
    def test_activation_layer_from_string(self):
        layer = ActivationLayer("relu")
        out = layer.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_activation_backward_requires_forward(self):
        with pytest.raises(RuntimeError):
            ActivationLayer("relu").backward(np.ones((1, 2)))

    def test_dropout_identity_at_inference(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_kept_units(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 1))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        # Roughly half the units survive.
        assert 0.4 < kept.size / out.size < 0.6

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((50, 4))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)


class TestLayerSummary:
    def test_dense_summary_fields(self, dense):
        info = layer_summary(dense)
        assert info["type"] == "Dense"
        assert info["n_inputs"] == 4
        assert info["n_outputs"] == 3
        assert info["parameters"] == 4 * 3 + 3

    def test_activation_summary(self):
        info = layer_summary(ActivationLayer("tanh"))
        assert info == {"type": "ActivationLayer", "activation": "tanh"}

    def test_dropout_summary(self):
        info = layer_summary(Dropout(0.25))
        assert info == {"type": "Dropout", "rate": 0.25}
