#!/usr/bin/env python3
"""Reproduce Figure 1: standalone-technique Pareto fronts on all four datasets.

For each of WhiteWine, RedWine, Pendigits and Seeds, this sweeps

* quantization over 2-7 bit weights (with QAT),
* unstructured pruning over 20-60 % sparsity (with fine-tuning),
* per-input-position weight clustering over a range of cluster budgets,

synthesizes every design with the analytical EGT bespoke model, normalizes
against the un-minimized baseline and prints the per-technique Pareto fronts
plus the area gain at the 5 % accuracy-loss budget.

Run with::

    python examples/figure1_pareto_fronts.py            # all four datasets
    python examples/figure1_pareto_fronts.py seeds      # a single dataset
    python examples/figure1_pareto_fronts.py --fast     # reduced-cost settings
"""

import argparse

from repro.datasets import PAPER_DATASETS
from repro.experiments import figure1_summary_rows, run_figure1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "datasets",
        nargs="*",
        default=list(PAPER_DATASETS),
        help="datasets to evaluate (default: the paper's four)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use reduced-cost settings (coarser sweeps, fewer epochs)",
    )
    args = parser.parse_args()

    panels = run_figure1(datasets=args.datasets, fast=args.fast)

    for dataset, panel in panels.items():
        print()
        for row in panel.format_rows():
            print(row)

    print("\n=== area gain at <=5 % accuracy loss (paper: quantization ~5x, "
          "pruning ~2.8x, clustering ~3.5x) ===")
    for row in figure1_summary_rows(panels):
        print(row)


if __name__ == "__main__":
    main()
