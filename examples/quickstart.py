#!/usr/bin/env python3
"""Quickstart: train a printed MLP classifier, synthesize it, and minimize it.

This walks through the core loop of the paper on the WhiteWine classifier:

1. load the dataset and prepare it for fixed-point bespoke inference,
2. train the float baseline MLP,
3. synthesize the un-minimized bespoke circuit (the paper's baseline [1]),
4. apply 4-bit quantization-aware training and re-synthesize,
5. report the accuracy/area trade-off.

Run with::

    python examples/quickstart.py
    REPRO_SMOKE=1 python examples/quickstart.py   # reduced budgets (CI smoke)
"""

import os

from repro.bespoke import BespokeConfig, synthesize
from repro.datasets import get_classifier_spec, load_dataset, prepare_split, train_val_test_split
from repro.nn import build_mlp, train_classifier
from repro.quantization import QATConfig, quantize_aware_train


#: REPRO_SMOKE=1 shrinks data/epoch budgets so CI can run the full script fast.
SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"


def main() -> None:
    # 1. Data: min-max scaled and quantized to the 4-bit printed-ADC grid.
    dataset = load_dataset("whitewine", n_samples=400 if SMOKE else None)
    spec = get_classifier_spec("whitewine")
    split = train_val_test_split(dataset, seed=0)
    data = prepare_split(split, input_bits=spec.input_bits)
    print(f"dataset: {dataset.name}  ({dataset.n_samples} samples, "
          f"{dataset.n_features} features, {dataset.n_classes} classes)")

    # 2. Train the float baseline (the topology used by the printed-classifier literature).
    model = build_mlp(dataset.n_features, spec.hidden_layers, dataset.n_classes, seed=0)
    train_classifier(
        model,
        data.train.features,
        data.train.labels,
        data.validation.features,
        data.validation.labels,
        epochs=20 if SMOKE else spec.epochs,
        batch_size=spec.batch_size,
        learning_rate=spec.learning_rate,
        seed=0,
    )
    baseline_accuracy = model.evaluate_accuracy(data.test.features, data.test.labels)

    # 3. Synthesize the un-minimized bespoke baseline (8-bit weights, 4-bit inputs).
    baseline_report = synthesize(
        model,
        config=BespokeConfig(input_bits=4, weight_bits=spec.baseline_weight_bits),
        name="whitewine_baseline",
    )
    print("\n=== un-minimized bespoke baseline ===")
    print(baseline_report.format_summary())
    print(f"test accuracy     : {baseline_accuracy:.3f}")

    # 4. Quantize to 4-bit weights with QAT and re-synthesize.
    quantized = model.clone()
    quantize_aware_train(
        quantized, data, QATConfig(weight_bits=4, epochs=5 if SMOKE else 20), seed=0
    )
    quantized_accuracy = quantized.evaluate_accuracy(data.test.features, data.test.labels)
    quantized_report = synthesize(
        quantized,
        config=BespokeConfig(input_bits=4, weight_bits=4),
        name="whitewine_q4",
    )
    print("\n=== 4-bit quantized bespoke design ===")
    print(quantized_report.format_summary(baseline_report))
    print(f"test accuracy     : {quantized_accuracy:.3f}")

    # 5. The paper's headline quantities.
    gain = quantized_report.area_gain(baseline_report)
    relative_loss = 1.0 - quantized_accuracy / baseline_accuracy
    print("\n=== trade-off ===")
    print(f"area gain         : {gain:.2f}x")
    print(f"accuracy loss     : {relative_loss * 100:.1f} % (relative to baseline)")


if __name__ == "__main__":
    main()
