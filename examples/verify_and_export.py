#!/usr/bin/env python3
"""Verify a minimized classifier bit-accurately and export deployment artefacts.

After minimization the question a hardware designer asks is not only "how
small is it?" but "is the circuit I am about to print functionally the model
I validated, and what happens when the foil has defects?". This example
covers that last mile for the Seeds classifier:

1. train the baseline and build a 3-bit quantized + 40 % pruned design,
2. verify the bespoke circuit bit-accurately with the fixed-point simulator,
3. inspect the datapath report (accumulator widths) and the energy profile,
4. run a fault-injection campaign (5 % open defects) on baseline vs minimized,
5. export structural Verilog and the experiment artefacts (CSV / markdown /
   ASCII figure) to ``examples/output/``.

Run with::

    python examples/verify_and_export.py
    REPRO_SMOKE=1 python examples/verify_and_export.py   # CI smoke budgets
"""

import os
from pathlib import Path

from repro.analysis import export_sweep, sweep_plot
from repro.bespoke import BespokeConfig, FixedPointSimulator, export_verilog, synthesize
from repro.core import MinimizationPipeline, PipelineConfig
from repro.hardware import battery_life_comparison, energy_profile
from repro.pruning import prune_by_magnitude
from repro.quantization import QATConfig, quantize_aware_train
from repro.reliability import FaultInjectionConfig, compare_fault_tolerance


#: REPRO_SMOKE=1 shrinks training/fault-campaign budgets for the CI smoke run.
SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"


def main() -> None:
    output_dir = Path(__file__).with_name("output")

    # 1. Baseline + minimized design.
    config = PipelineConfig(
        dataset="seeds",
        seed=0,
        train_epochs=30 if SMOKE else None,
        finetune_epochs=3 if SMOKE else 15,
    )
    pipeline = MinimizationPipeline(config)
    prepared = pipeline.prepare()
    data = prepared.data

    minimized = prepared.baseline_model.clone()
    prune_by_magnitude(minimized, 0.4)
    quantize_aware_train(
        minimized, data, QATConfig(weight_bits=3, epochs=5 if SMOKE else 20), seed=0
    )
    bespoke_config = BespokeConfig(input_bits=4, weight_bits=3)
    report = synthesize(minimized, config=bespoke_config, name="seeds_minimized")

    print("=== minimized design (3-bit, 40 % sparse) ===")
    print(report.format_summary(prepared.baseline_point.report))
    accuracy = minimized.evaluate_accuracy(data.test.features, data.test.labels)
    print(f"test accuracy     : {accuracy:.3f} (baseline {prepared.baseline_accuracy:.3f})")

    # 2. Bit-accurate functional verification.
    simulator = FixedPointSimulator(minimized, bespoke_config)
    agreement = simulator.agreement_with_model(minimized, data.test.features)
    circuit_accuracy = simulator.evaluate_accuracy(data.test.features, data.test.labels)
    print("\n=== fixed-point verification ===")
    print(f"circuit/model prediction agreement : {agreement:.3f}")
    print(f"circuit accuracy (integer datapath): {circuit_accuracy:.3f}")

    # 3. Datapath + energy reports.
    datapath = simulator.datapath_report(data.test.features)
    print(f"accumulator widths per layer       : {datapath['accumulator_bits']} bits")
    profile = energy_profile(report, inferences_per_second=1.0)
    print(f"energy per classification          : {profile.energy_per_inference:.2f} uJ")
    print(f"battery life @1 Hz (10 mWh cell)   : {profile.battery_life_hours:.0f} h")
    battery = battery_life_comparison(report, prepared.baseline_point.report)
    print(f"battery-lifetime gain vs baseline  : {battery['lifetime_gain']:.2f}x")

    # 4. Defect tolerance.
    campaign = FaultInjectionConfig(
        fault_rate=0.05, fault_model="open", n_trials=5 if SMOKE else 15, seed=0
    )
    tolerance = compare_fault_tolerance(
        {"baseline": prepared.baseline_model, "minimized": minimized},
        data.test.features,
        data.test.labels,
        campaign,
    )
    print("\n=== 5 % open-defect campaign (15 trials) ===")
    for name, result in tolerance.items():
        print(
            f"{name:<10} fault-free={result.fault_free_accuracy:.3f}  "
            f"mean={result.mean_accuracy:.3f}  worst={result.worst_accuracy:.3f}"
        )

    # 5. Deployment artefacts.
    output_dir.mkdir(exist_ok=True)
    verilog_path = output_dir / "seeds_minimized.v"
    verilog_path.write_text(export_verilog(minimized, bespoke_config, "seeds_minimized"))
    sweep = pipeline.run(("quantization", "pruning"))
    artefacts = export_sweep(sweep, output_dir)
    print("\n=== exported artefacts ===")
    print(f"structural Verilog : {verilog_path}")
    for kind, path in artefacts.items():
        print(f"{kind:<18} : {path}")
    print("\nASCII accuracy/area panel:")
    print(sweep_plot(sweep, width=60, height=16))


if __name__ == "__main__":
    main()
