#!/usr/bin/env python3
"""Reproduce Figure 2: hardware-aware GA combining all three minimizations.

The NSGA-II searches over per-layer weight bit-widths, sparsity levels and
cluster budgets; every candidate is fine-tuned briefly and synthesized with
the bespoke EGT area model. The combined Pareto front is printed next to the
standalone fronts, together with the winning configuration at the 5 %
accuracy-loss budget (the paper reports up to 8x area gain there).

Run with::

    python examples/combined_search_ga.py                 # WhiteWine, as in the paper
    python examples/combined_search_ga.py --dataset seeds
    python examples/combined_search_ga.py --generations 12 --population 20
    python examples/combined_search_ga.py --fast          # reduced-cost settings
"""

import argparse

from repro.core import PipelineConfig, fast_config
from repro.experiments import run_figure2
from repro.search import GAConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="whitewine", help="dataset to search on")
    parser.add_argument("--population", type=int, default=16, help="GA population size")
    parser.add_argument("--generations", type=int, default=8, help="GA generations")
    parser.add_argument("--finetune-epochs", type=int, default=6,
                        help="fine-tuning epochs inside each fitness evaluation")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="reduced-cost pipeline settings (smaller data, "
                             "fewer epochs) — used by the CI smoke run")
    def workers_type(value: str) -> int:
        workers = int(value)
        if workers < 0:
            raise argparse.ArgumentTypeError(f"must be >= 0, got {workers}")
        return workers

    parser.add_argument("--workers", type=workers_type, default=1,
                        help="fitness-evaluation worker processes "
                             "(1 = serial, 0 = all cores); any value gives "
                             "bit-identical results")
    args = parser.parse_args()

    if args.fast:
        config = fast_config(args.dataset, seed=args.seed, n_workers=args.workers)
    else:
        config = PipelineConfig(
            dataset=args.dataset, seed=args.seed, n_workers=args.workers
        )
    ga_config = GAConfig(
        population_size=args.population,
        n_generations=args.generations,
        finetune_epochs=args.finetune_epochs,
        seed=args.seed,
        n_workers=args.workers,
    )
    result = run_figure2(args.dataset, config=config, ga_config=ga_config)

    print()
    for row in result.format_rows():
        print(row)

    print(f"\nGA evaluations      : {result.ga_result.n_evaluations}")
    print("generation progress :")
    for entry in result.ga_result.generations:
        print(
            f"  gen {int(entry['generation']):>2}  front={int(entry['front_size'])}  "
            f"best_gain={entry['best_area_gain']:.2f}x  best_acc={entry['best_accuracy']:.3f}"
        )

    best = result.ga_result.best_area_within_loss(result.sweep.baseline, max_loss=0.05)
    if best is not None:
        print("\nbest combined design within the 5 % loss budget:")
        print(f"  accuracy     : {best.accuracy:.3f} "
              f"(baseline {result.sweep.baseline.accuracy:.3f})")
        print(f"  area         : {best.area:.2f} mm^2 "
              f"({result.sweep.baseline.area / best.area:.2f}x gain)")
        print(f"  weight bits  : {best.parameters['weight_bits']}")
        print(f"  sparsity     : {best.parameters['sparsity']}")
        print(f"  clusters     : {best.parameters['clusters']}")
    else:
        print("\nno combined design met the 5 % loss budget with this GA budget")


if __name__ == "__main__":
    main()
