#!/usr/bin/env python3
"""Design a bespoke printed classifier for a custom (user-defined) sensor task.

The paper's motivation is smart packaging / low-end healthcare: a handful of
printed sensors feeding a tiny on-foil classifier. This example shows the
full workflow for such a user-defined task rather than a UCI benchmark:

1. register a custom dataset (a synthetic 6-sensor freshness-monitoring task
   with 3 classes: fresh / ageing / spoiled),
2. train the bespoke baseline and inspect its synthesis report,
3. explore the standalone minimization sweeps,
4. pick the smallest design within a 5 % accuracy-loss budget, save the
   minimized model, and print its per-block area breakdown.

Run with::

    python examples/custom_printed_sensor.py
    REPRO_SMOKE=1 python examples/custom_printed_sensor.py   # CI smoke budgets
"""

import os
from pathlib import Path

from repro.core import MinimizationPipeline, PipelineConfig, best_area_gain_at_loss
from repro.datasets import (
    ClassifierSpec,
    GaussianClassSpec,
    SyntheticSpec,
    generate_gaussian_mixture,
    register_dataset,
)
from repro.nn import save_model
from repro.search import EvaluationSettings, Genome, apply_genome


def load_freshness(seed: int = 7, n_samples: int = 900):
    """A synthetic printed-sensor task: 6 gas/humidity channels, 3 classes."""
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=6,
        class_specs=[
            GaussianClassSpec(weight=0.5, spread=1.0),    # fresh
            GaussianClassSpec(weight=0.3, spread=1.2),    # ageing
            GaussianClassSpec(weight=0.2, spread=1.1),    # spoiled
        ],
        class_separation=2.6,
        label_noise=0.08,
        feature_correlation=0.4,
        ordinal_classes=True,
        seed=seed,
        name="freshness",
        feature_names=("nh3", "h2s", "co2", "humidity", "temperature", "ph"),
        class_names=("fresh", "ageing", "spoiled"),
    )
    return generate_gaussian_mixture(spec)


#: REPRO_SMOKE=1 shrinks training budgets so CI can run the full script fast.
SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"


def main() -> None:
    # 1. Register the custom task so the pipeline can use it like a built-in.
    register_dataset(
        "freshness",
        load_freshness,
        ClassifierSpec("freshness", hidden_layers=(6,), epochs=100, batch_size=32),
    )

    config = PipelineConfig(
        dataset="freshness",
        seed=0,
        bit_range=(2, 3, 4, 5, 6),
        sparsity_range=(0.2, 0.4, 0.6),
        cluster_range=(2, 3, 4),
        train_epochs=15 if SMOKE else None,
        finetune_epochs=3 if SMOKE else 15,
    )
    pipeline = MinimizationPipeline(config)

    # 2. Baseline.
    prepared = pipeline.prepare()
    print("=== bespoke baseline for the freshness classifier ===")
    print(prepared.baseline_point.report.format_summary())
    print(f"test accuracy     : {prepared.baseline_accuracy:.3f}")

    # 3. Standalone sweeps.
    sweep = pipeline.run()
    print("\narea gain at <=5 % accuracy loss, per technique:")
    for technique, gain in pipeline.area_gains(sweep).items():
        print(f"  {technique:<13} " + (f"{gain:.2f}x" if gain else "not reached"))

    # 4. A hand-picked combined design: 4-bit weights, 40 % sparsity, 3 clusters.
    genome = Genome(weight_bits=(4, 4), sparsity=(0.4, 0.4), clusters=(3, 3))
    minimized = apply_genome(
        genome, prepared, EvaluationSettings(finetune_epochs=3 if SMOKE else 12), seed=0
    )
    accuracy = minimized.evaluate_accuracy(
        prepared.data.test.features, prepared.data.test.labels
    )
    from repro.bespoke import BespokeConfig, synthesize

    report = synthesize(
        minimized,
        config=BespokeConfig(input_bits=4, weight_bits=list(genome.weight_bits)),
        name="freshness_combined",
    )
    print("\n=== combined 4-bit / 40 % sparse / 3-cluster design ===")
    print(report.format_summary(prepared.baseline_point.report))
    print(f"test accuracy     : {accuracy:.3f} (baseline {prepared.baseline_accuracy:.3f})")

    best = best_area_gain_at_loss(sweep.points, sweep.baseline, 0.05)
    if best is not None:
        print(f"\nbest standalone design within 5 % loss: "
              f"{best.technique} -> {best.area_gain:.2f}x area gain")

    # 5. Persist the minimized model next to this script.
    output = Path(__file__).with_name("freshness_minimized.npz")
    save_model(minimized, output)
    print(f"\nminimized model saved to {output}")


if __name__ == "__main__":
    main()
